(** Discrete-event simulation of a deployed, partitioned program on a
    single-hop wireless testbed (the reproduction of §7.3's 20-TMote
    deployment), scalable to synthetic fleets of 10^5 nodes.

    Per node: sensor windows arrive periodically; if the CPU is still
    busy with an earlier traversal (beyond one buffered window) the
    input is {e missed}.  Completing a traversal turns every value
    crossing the node→server cut into a fragmented radio message.
    Nodes contend for one shared channel with CSMA + random backoff;
    two transmissions starting within the carrier-sense turnaround
    window collide.  A message is delivered only when all of its
    fragments arrive; delivered messages drive the server half of the
    graph, whose sink outputs are the application's goodput.

    The three measured quantities of Figure 9 map to
    {!result.input_fraction}, {!result.msg_fraction}, and their
    product {!result.goodput_fraction}.

    Two orthogonal extensions harden the deployment story:
    {!Faults.t} injects node crash/reboot, Gilbert–Elliott burst loss
    and clock drift; {!Transport.policy} optionally layers end-to-end
    ack/retry over the CSMA channel.  Both default to off, and with
    both off the simulation — including every PRNG draw — is
    identical to the pre-fault-injection testbed, so existing seeds
    reproduce bit-identical results.

    {2 Scale-out}

    Three independent knobs rebuild the hot path for large fleets
    without moving any small-N result:

    - {!config.sched} picks the event scheduler: the historical
      binary heap ([Sched.Heap], the default — goldens cannot move
      silently) or the O(1) timing wheel ([Sched.Wheel]).  Both pop
      the same event sequence (ties are measure-zero; the
      [sched-equivalence] fuzz oracle enforces trace identity).
    - {!config.cells} partitions nodes into disjoint {e collision
      domains} (radio cells): nodes contend only within their cell,
      each cell draws from its own derived PRNG streams
      ([derive seed [2; cell(; k)]]), and the server half fires over
      the deterministically merged delivery log.  [None] (default) is
      the single shared channel of the paper's testbed with the
      historical stream layout.
    - {!config.domains} simulates cells in parallel on that many
      {!Domain}s.  Cells are joined in cell-index order, so the
      result is a pure function of the cell decomposition: domains
      1, 2 and 4 return identical results, bit for bit.  Under
      [domains > 1] every [source_spec.gen] closure (and any [?probe]
      callback passed to {!run}) must be thread-safe.

    Seed derivation: the config [seed] drives the primary
    channel/CSMA stream directly ([Prng.create seed]); fault
    processes use [Prng.derive seed [1; k]] with [k = 0] for clock
    drift, [k = 1] for the crash schedule and [k = 2] for the burst
    channel, so enabling one fault class never perturbs another's
    schedule.  Multi-cell runs give cell [c] the primary stream
    [derive seed [2; c]] and fault streams [derive seed [2; c; k]],
    making each cell's draws independent of the number of cells
    around it. *)

type source_spec = {
  source : int;  (** source operator id *)
  rate : float;  (** windows per second *)
  gen : node:int -> seq:int -> Dataflow.Value.t;
}

type config = {
  n_nodes : int;
  platform : Profiler.Platform.t;
  link : Link.t;
  duration : float;  (** simulated seconds *)
  seed : int;
  tx_queue_packets : int;  (** per-node radio queue capacity *)
  per_packet_cpu_s : float;
      (** node CPU consumed per transmitted packet (the "processor
          involvement in communication" the paper's additive model
          omits, §7.3.1) *)
  os_overhead : float;
      (** multiplier on traversal compute time for OS/task overheads *)
  faults : Faults.t;  (** injected failure processes *)
  transport : Transport.policy;  (** end-to-end reliability *)
  sched : Sched.kind;  (** event scheduler; [Heap] is the legacy default *)
  cells : int array option;
      (** [cells.(node)] = collision-domain id (dense, every cell
          nonempty); [None] = one shared channel (the paper's testbed) *)
  domains : int;  (** parallel simulation domains (>= 1) *)
}

val default_config :
  ?n_nodes:int -> ?duration:float -> ?seed:int ->
  ?faults:Faults.t -> ?transport:Transport.policy ->
  ?sched:Sched.kind -> ?cells:int array -> ?domains:int ->
  platform:Profiler.Platform.t -> link:Link.t -> unit -> config
(** Defaults: no faults, unreliable transport, heap scheduler, one
    shared collision domain, one simulation domain. *)

type result = {
  inputs_offered : int;
  inputs_processed : int;
  msgs_sent : int;  (** whole values crossing the cut *)
  msgs_received : int;
      (** fully reassembled at the basestation (unique messages —
          duplicate deliveries under reliable transport are counted in
          [msgs_duplicate] and do not re-fire the server half) *)
  packets_sent : int;
  packets_lost_collision : int;
  packets_lost_channel : int;
  packets_lost_queue : int;
  sink_outputs : int;
  input_fraction : float;
  msg_fraction : float;
  goodput_fraction : float;  (** input_fraction *. msg_fraction *)
  node_busy_fraction : float;  (** mean CPU utilisation across nodes *)
  offered_bytes_per_sec : float;
  msgs_duplicate : int;
      (** reliable transport: deliveries suppressed by the dedup layer
          (a retransmission whose earlier copy already arrived) *)
  msgs_expired : int;
      (** reliable transport: messages whose retry budget was
          exhausted (or whose sender crashed) without delivery — the
          accounted, non-silent end-to-end losses *)
  msgs_pending : int;
      (** reliable transport: undelivered messages still awaiting
          retry when the simulation ended *)
  retransmissions : int;  (** message-level retransmit attempts *)
  acks_sent : int;
  acks_lost : int;
  crashes : int;  (** node crash events that occurred *)
  inputs_lost_down : int;  (** inputs arriving at a crashed node *)
  edge_bytes_per_sec : float array;
      (** measured per-edge traffic (bytes/s, indexed by [eid]) across
          both halves — the {e observed} edge rates the adaptive
          controller feeds back into the partitioner, as opposed to
          the profiled rates the static plan was built from *)
  events_processed : int;
      (** discrete events handled inside the horizon, summed over
          cells — the numerator of the bench's events/sec *)
}

val run :
  ?probe:(float -> int -> unit) ->
  config -> graph:Dataflow.Graph.t -> node_of:(int -> bool) ->
  sources:source_spec list -> result
(** Simulate the given partition.  [node_of] must place every source
    operator on the node.

    [probe] observes every handled event as [(time, packed_event)]
    before its handler runs — the hook the [sched-equivalence] oracle
    digests traces with.  The packing is internal (stable within a
    run: equal inputs give equal packings), node indices in it are
    cell-local, and under [domains > 1] the callback fires
    concurrently from worker domains, so callers either synchronize
    or probe single-domain runs only.

    Under reliable transport every message ends in exactly one of
    [msgs_received], [msgs_expired] or [msgs_pending]:
    [msgs_sent = msgs_received + msgs_expired + msgs_pending]. *)

val routing_parents : n_nodes:int -> int array
(** The testbed's routing tree as a parent array: the single-hop CSMA
    channel is a depth-one star — motes [0 .. n_nodes-1] each route
    directly to the basestation, the last entry (parent [-1]).
    Suitable for [Placement.Topology.of_parents].
    @raise Invalid_argument when [n_nodes < 1]. *)

(** {2 Synthetic fleets} *)

type fleet = {
  graph : Dataflow.Graph.t;  (** probe program: node source → server sink *)
  source_op : int;
  sources : source_spec list;
  cells : int array;  (** radio cell per node, [cell_size] nodes each *)
  parents : int array;
      (** routing tree over cells, basestation root last (parent
          [-1]); [parents.(k) > k], suitable for
          [Placement.Topology.of_parents] *)
}

val synthetic :
  nodes:int -> seed:int -> ?cell_size:int -> ?rate:float ->
  ?payload_bytes:int -> ?shape:[ `Star | `Dary of int | `Random ] ->
  unit -> fleet
(** A generated fleet for scale testing: [nodes] motes grouped into
    radio cells of [cell_size] (default 16), each running the
    two-operator probe program at [rate] windows/s (default 2) with
    [payload_bytes] windows (default 110).  [shape] arranges the
    cells into a routing tree: a depth-one [`Star] (every cell under
    the basestation), a regular [`Dary d] tree (default [`Dary 4]),
    or a seeded [`Random] tree ([Prng.derive seed [3]]).  The shape
    is placement-layer metadata ({!fleet.parents}); radio contention
    is always within-cell.  The shared [gen] payload is immutable, so
    the fleet is safe under [domains > 1].
    @raise Invalid_argument when [nodes < 1], [cell_size < 1] or a
    tree arity is [< 1]. *)
