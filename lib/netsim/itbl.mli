(** Flat open-addressing hash table from non-negative ints to
    non-negative ints.

    Replaces the tuple-keyed [Hashtbl]s on the testbed hot path:
    callers pack [(node, mid, attempt)] triples into a single
    non-negative int key, and values are either small counters or slot
    indices into preallocated pools — so lookups allocate nothing and
    never box.

    Linear probing with tombstones; the table rehashes at ~3/4 load.
    Absence is signalled in-band: {!get} returns [-1], which is safe
    because every stored value is [>= 0]. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is rounded up to a power of two (default 16). *)

val length : t -> int
(** Number of live bindings. *)

val get : t -> int -> int
(** [get t k] is the value bound to [k], or [-1] when absent. *)

val mem : t -> int -> bool

val set : t -> int -> int -> unit
(** [set t k v] binds [k] to [v], replacing any previous binding.
    @raise Invalid_argument when [k < 0] or [v < 0]. *)

val remove : t -> int -> unit
(** No-op when [k] is absent. *)

val clear : t -> unit
(** Drops all bindings, keeping the allocated capacity. *)

val iter : (int -> int -> unit) -> t -> unit
(** Iterates live bindings in unspecified order.  The callback must
    not mutate the table. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
