(** End-to-end reliable transport above the CSMA link.

    The link layer of {!Testbed} retries only after {e collisions};
    clean-channel loss (including injected {!Faults} burst loss) is
    silent — the §7.3 behaviour that turns CPU and channel overload
    into programmer-visible data loss.  [Reliable] layers a classic
    ack/retry protocol over it: the sender keeps each message in a
    retransmit buffer, the basestation acks every fully reassembled
    message, and unacked messages are retransmitted with exponential
    backoff until a per-message retry budget is exhausted — at which
    point the loss is {e accounted} ([msgs_expired] in
    {!Testbed.result}), never silent.

    Acks ride the same channel: each ack occupies the air for one
    short-packet time and is itself subject to the channel's loss
    process, so reliability is not free — retransmissions and acks
    steal airtime from fresh data, which is exactly the §4.3 overload
    coupling the adaptive controller has to manage. *)

type reliable = {
  max_retries : int;
      (** retransmissions after the first attempt; the total number of
          tries is [max_retries + 1] *)
  rto_s : float;  (** initial retransmit timeout *)
  rto_backoff : float;  (** timeout multiplier per retry (>= 1) *)
  rto_max_s : float;  (** timeout ceiling *)
}

type policy = Unreliable | Reliable of reliable

val default_reliable :
  ?max_retries:int -> ?rto_s:float -> ?rto_backoff:float ->
  ?rto_max_s:float -> unit -> policy
(** Defaults: 4 retries, 250 ms initial RTO, x2 backoff, 4 s cap —
    sized for the CC2420's ~14 ms packet time. *)

val rto : reliable -> attempt:int -> float
(** Timeout armed after transmission attempt [attempt] (1-based):
    [min rto_max_s (rto_s *. rto_backoff^(attempt-1))]. *)

val ack_bytes : int
(** Wire size of an ack (sequence number + addressing). *)

val is_reliable : policy -> bool
