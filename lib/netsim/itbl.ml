(* Open-addressing int->int table, linear probing with tombstones.
   Slot states in [keys]: -1 empty, -2 tombstone, >= 0 live key. *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable live : int;  (* live bindings *)
  mutable used : int;  (* live + tombstones *)
}

let empty_slot = -1
let tombstone = -2

let rec pow2 n c = if c >= n then c else pow2 n (2 * c)

let create ?(capacity = 16) () =
  let cap = pow2 (Int.max 8 capacity) 8 in
  { keys = Array.make cap empty_slot; vals = Array.make cap 0; live = 0; used = 0 }

let length t = t.live

(* Fibonacci-style multiplicative hash; keys are full 62-bit packs so
   the low bits alone are not well distributed. *)
let hash k m = (k * 0x2545F4914F6CDD1D) land max_int land (m - 1)

let rec probe_find keys m k i =
  let ki = keys.(i) in
  if ki = k then i
  else if ki = empty_slot then -1
  else probe_find keys m k ((i + 1) land (m - 1))

let find_slot t k =
  let m = Array.length t.keys in
  probe_find t.keys m k (hash k m)

let get t k =
  let i = find_slot t k in
  if i < 0 then -1 else t.vals.(i)

let mem t k = find_slot t k >= 0

(* The probe must run to the key or an empty slot before reusing a
   tombstone: stopping at the first tombstone would duplicate a key
   that lives further down its chain, and the stale copy would
   resurface after a remove. *)
let insert keys vals m k v start =
  let rec go i free =
    let ki = keys.(i) in
    if ki = k then begin
      vals.(i) <- v;
      `Replaced
    end
    else if ki = empty_slot then begin
      match free with
      | Some f ->
          keys.(f) <- k;
          vals.(f) <- v;
          `Reused
      | None ->
          keys.(i) <- k;
          vals.(i) <- v;
          `Fresh
    end
    else if ki = tombstone then
      go ((i + 1) land (m - 1)) (match free with None -> Some i | _ -> free)
    else go ((i + 1) land (m - 1)) free
  in
  go start None

let rehash t cap =
  let keys = Array.make cap empty_slot in
  let vals = Array.make cap 0 in
  let old = t.keys and oldv = t.vals in
  for i = 0 to Array.length old - 1 do
    let k = old.(i) in
    if k >= 0 then ignore (insert keys vals cap k oldv.(i) (hash k cap))
  done;
  t.keys <- keys;
  t.vals <- vals;
  t.used <- t.live

let set t k v =
  if k < 0 then invalid_arg "Itbl.set: negative key";
  if v < 0 then invalid_arg "Itbl.set: negative value";
  let m = Array.length t.keys in
  if 4 * (t.used + 1) > 3 * m then
    rehash t (if 2 * t.live >= m then 2 * m else m);
  let m = Array.length t.keys in
  match insert t.keys t.vals m k v (hash k m) with
  | `Replaced -> ()
  | `Reused -> t.live <- t.live + 1
  | `Fresh ->
      t.live <- t.live + 1;
      t.used <- t.used + 1

let remove t k =
  let i = find_slot t k in
  if i >= 0 then begin
    t.keys.(i) <- tombstone;
    t.live <- t.live - 1
  end

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_slot;
  t.live <- 0;
  t.used <- 0

let iter f t =
  let keys = t.keys in
  for i = 0 to Array.length keys - 1 do
    if keys.(i) >= 0 then f keys.(i) t.vals.(i)
  done

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc
