(** Radio link parameters for the simulated testbed.

    Models a single collision domain (all nodes one hop from the
    basestation, like the paper's 20-TMote testbed whose bottleneck is
    the single link at the root of the routing tree, §7.3). *)

type t = {
  bitrate_bps : float;  (** physical rate, e.g. 250 kbps for CC2420 *)
  header_bytes : int;  (** per-packet MAC/PHY framing *)
  payload_bytes : int;  (** usable application payload per packet *)
  turnaround_s : float;
      (** carrier-sense blind spot: two transmissions starting within
          this window collide *)
  backoff_s : float;  (** max random backoff before an attempt *)
  per_packet_overhead_s : float;
      (** MAC/OS processing time per packet beyond raw airtime; this is
          what limits a TinyOS 2.0 stack to tens of packets per second
          despite the 250 kbps PHY *)
  base_loss : float;  (** per-packet loss on an uncontended channel *)
  retries : int;  (** link-layer retransmissions after a collision *)
}

val cc2420 : t
(** TMote Sky radio. *)

val wifi : t
(** 802.11b-class link for Meraki / phones (abstracted). *)

val packet_airtime : t -> float
(** Seconds a full-size packet occupies the channel. *)

val short_packet_airtime : t -> bytes:int -> float
(** Channel time of a short control frame (e.g. a transport ack)
    carrying [bytes] of payload. *)

val packets_of_bytes : t -> int -> int
(** Fragments needed for a payload of the given size (at least 1). *)

val saturation_msgs_per_sec : t -> float
(** Upper bound on packets/s through the channel. *)
