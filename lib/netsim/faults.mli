(** Seeded fault injection for the simulated testbed.

    The additive model behind the partitioner assumes a benign
    runtime; §7.3 of the paper shows what happens when that assumption
    breaks.  This module supplies the three failure processes the
    testbed can inject, all driven by explicitly derived PRNG streams
    so a fault schedule is a pure function of [(faults, seed)]:

    - {b node crash/reboot}: nodes fail with exponentially distributed
      up-times and reboot after a fixed downtime.  A crash loses all
      volatile state — operator state (the §2.1.1 stateful-operator
      caveat), the radio send queue, the in-flight transport buffer —
      and inputs arriving while the node is down are missed.
    - {b link burst loss}: a Gilbert–Elliott two-state channel layered
      on top of {!Link.base_loss}.  The channel alternates between a
      Good state (loss = [base_loss]) and a Bad state (loss =
      [max base_loss bad_loss]) with exponentially distributed
      sojourns, producing the correlated loss bursts real 802.15.4
      deployments see.
    - {b clock drift}: each node's sample clock runs at a slightly
      wrong rate, de-phasing the fleet over time.

    [none] injects nothing and draws nothing, so a run with
    [faults = none] is bit-identical to a run of a faultless build. *)

type burst = {
  to_bad_rate : float;  (** Good→Bad transitions per second *)
  to_good_rate : float;  (** Bad→Good transitions per second *)
  bad_loss : float;  (** per-packet loss probability in the Bad state *)
}

type t = {
  crash_rate : float;
      (** node crashes per second of up-time (0 = never) *)
  reboot_s : float;  (** downtime after a crash *)
  burst : burst option;  (** Gilbert–Elliott channel, [None] = clean *)
  clock_drift : float;
      (** max relative sample-clock error, e.g. [50e-6] = 50 ppm *)
}

val none : t
val is_none : t -> bool

val burst_of_loss : ?mean_burst_s:float -> float -> burst
(** [burst_of_loss p] builds a Gilbert–Elliott channel whose {e
    time-averaged} extra loss is [p], spent in bursts with
    [bad_loss = max 0.5 (1.25 p)] (capped at 1) and mean Bad sojourn
    [mean_burst_s] (default 5 s). *)

(** {1 Runtime processes}

    Each process draws from its own PRNG so that enabling one fault
    class never perturbs another's schedule. *)

type channel
(** Gilbert–Elliott channel state, advanced lazily in simulation
    time. *)

val channel : Prng.t -> burst option -> channel
val channel_loss : channel -> now:float -> base:float -> float
(** Advance the channel to [now] and return the current per-packet
    loss probability ([base] when the channel is clean or Good). *)

val channel_bad : channel -> now:float -> bool
(** Whether the channel is in the Bad state at [now] (always false for
    a clean channel). *)

val crash_schedule :
  Prng.t -> t -> n_nodes:int -> duration:float ->
  (float * int * [ `Crash | `Reboot ]) list
(** The full crash/reboot event list for a run, sorted by time.  Empty
    when [crash_rate = 0]. *)

val drifts : Prng.t -> t -> n_nodes:int -> float array
(** Per-node clock-rate multipliers, uniform in
    [1 ± clock_drift]; all exactly [1.0] when [clock_drift = 0]
    (drawing nothing). *)
