type reliable = {
  max_retries : int;
  rto_s : float;
  rto_backoff : float;
  rto_max_s : float;
}

type policy = Unreliable | Reliable of reliable

let default_reliable ?(max_retries = 4) ?(rto_s = 0.25) ?(rto_backoff = 2.)
    ?(rto_max_s = 4.) () =
  if max_retries < 0 then invalid_arg "Transport.default_reliable: max_retries";
  if rto_s <= 0. || rto_backoff < 1. || rto_max_s < rto_s then
    invalid_arg "Transport.default_reliable: bad timeout parameters";
  Reliable { max_retries; rto_s; rto_backoff; rto_max_s }

let rto r ~attempt =
  if attempt < 1 then invalid_arg "Transport.rto: attempt is 1-based";
  let t = r.rto_s *. (r.rto_backoff ** Float.of_int (attempt - 1)) in
  Float.min r.rto_max_s t

let ack_bytes = 6

let is_reliable = function Unreliable -> false | Reliable _ -> true
