open Dataflow

type source_spec = {
  source : int;
  rate : float;
  gen : node:int -> seq:int -> Value.t;
}

type config = {
  n_nodes : int;
  platform : Profiler.Platform.t;
  link : Link.t;
  duration : float;
  seed : int;
  tx_queue_packets : int;
  per_packet_cpu_s : float;
  os_overhead : float;
  faults : Faults.t;
  transport : Transport.policy;
}

let default_config ?(n_nodes = 1) ?(duration = 60.) ?(seed = 1)
    ?(faults = Faults.none) ?(transport = Transport.Unreliable) ~platform
    ~link () =
  {
    n_nodes;
    platform;
    link;
    duration;
    seed;
    tx_queue_packets = 24;
    (* copying and driving the radio costs a few thousand cycles per
       packet regardless of platform: ~0.75 ms on an 8 MHz mote, ~15 us
       on a 400 MHz Gumstix *)
    per_packet_cpu_s = 6000. /. platform.Profiler.Platform.clock_hz;
    os_overhead = 1.15;
    faults;
    transport;
  }

type result = {
  inputs_offered : int;
  inputs_processed : int;
  msgs_sent : int;
  msgs_received : int;
  packets_sent : int;
  packets_lost_collision : int;
  packets_lost_channel : int;
  packets_lost_queue : int;
  sink_outputs : int;
  input_fraction : float;
  msg_fraction : float;
  goodput_fraction : float;
  node_busy_fraction : float;
  offered_bytes_per_sec : float;
  msgs_duplicate : int;
  msgs_expired : int;
  msgs_pending : int;
  retransmissions : int;
  acks_sent : int;
  acks_lost : int;
  crashes : int;
  inputs_lost_down : int;
  edge_bytes_per_sec : float array;
}

(* ---- internal simulation structures ---- *)

type message = {
  mid : int;
  from_node : int;
  edge : Graph.edge;
  value : Value.t;
  total_frags : int;
}

type packet = {
  msg : message;
  t_attempt : int;  (* transport attempt this fragment belongs to *)
  mutable attempts : int;  (* link-layer (collision) retries *)
}

type tx = {
  sender : int;
  epoch : int;
  pkt : packet;
  start : float;
  mutable corrupted : bool;
}

type event =
  | Sample of int * int * int  (* node, source index, seq *)
  | Cpu_done of int * int  (* node, epoch *)
  | Attempt of int * int  (* node, epoch *)
  | Tx_end
  | Crash of int
  | Reboot of int
  | Rexmit of int * int  (* node, mid *)
  | Ack_arrive of int * int  (* node, mid *)

type node_state = {
  exec : Runtime.Exec.t;
  queue : packet Queue.t;  (* radio send queue *)
  mutable cpu_busy : bool;
  mutable buffered : (int * Value.t) option;  (* source op, value *)
  mutable waiting : bool;  (* an Attempt event is outstanding *)
  mutable cw : int;  (* congestion-backoff exponent, grows on busy/collision *)
  mutable busy_time : float;
  mutable next_mid : int;
  mutable up : bool;
  mutable epoch : int;  (* bumped on crash; stale events are discarded *)
}

(* sender-side retransmit buffer entry *)
type inflight = { if_msg : message; mutable if_attempts : int }

let run config ~graph ~node_of ~sources =
  if config.n_nodes <= 0 then invalid_arg "Testbed.run: need at least one node";
  List.iter
    (fun s ->
      if not (node_of s.source) then
        invalid_arg "Testbed.run: source operator not placed on the node")
    sources;
  let link = config.link in
  let faults = config.faults in
  (* Seed derivation (see prng.mli): the root seed drives the primary
     channel/CSMA stream exactly as it always has; each fault process
     draws from its own derived stream [1; k] so that enabling one
     fault class never perturbs another's schedule, and a run with
     [faults = none] draws nothing beyond the primary stream. *)
  let rng = Prng.create config.seed in
  let drift_rng = Prng.create (Prng.derive config.seed [ 1; 0 ]) in
  let crash_rng = Prng.create (Prng.derive config.seed [ 1; 1 ]) in
  let burst_rng = Prng.create (Prng.derive config.seed [ 1; 2 ]) in
  let ge = Faults.channel burst_rng faults.Faults.burst in
  let drifts = Faults.drifts drift_rng faults ~n_nodes:config.n_nodes in
  let reliable =
    match config.transport with
    | Transport.Unreliable -> None
    | Transport.Reliable r -> Some r
  in
  let node_mask = Array.init (Graph.n_ops graph) node_of in
  let replicated i =
    (Graph.op graph i).Op.namespace = Op.Node && not node_mask.(i)
  in
  let server =
    Runtime.Exec.create ~replicated ~member:(fun i -> not node_mask.(i)) graph
  in
  let nodes =
    Array.init config.n_nodes (fun _ ->
        {
          exec = Runtime.Exec.create ~member:(fun i -> node_mask.(i)) graph;
          queue = Queue.create ();
          cpu_busy = false;
          buffered = None;
          waiting = false;
          cw = 0;
          busy_time = 0.;
          next_mid = 0;
          up = true;
          epoch = 0;
        })
  in
  let events : event Heap.Pqueue.t = Heap.Pqueue.create () in
  let channel_busy_until = ref 0. in
  let current_tx : tx option ref = ref None in
  (* reassembly: (node, mid, transport attempt) -> fragments missing *)
  let missing : (int * int * int, int) Hashtbl.t = Hashtbl.create 256 in
  (* reliable transport state *)
  let inflight : (int * int, inflight) Hashtbl.t = Hashtbl.create 64 in
  let delivered : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  (* messages written off as expired whose last attempt is still in
     the air; a late delivery moves them back to received *)
  let expired : (int * int, unit) Hashtbl.t = Hashtbl.create 32 in
  (* counters *)
  let inputs_offered = ref 0 in
  let inputs_processed = ref 0 in
  let msgs_sent = ref 0 in
  let msgs_received = ref 0 in
  let packets_sent = ref 0 in
  let lost_collision = ref 0 in
  let lost_channel = ref 0 in
  let lost_queue = ref 0 in
  let sink_outputs = ref 0 in
  let offered_bytes = ref 0 in
  let msgs_duplicate = ref 0 in
  let msgs_expired = ref 0 in
  let retransmissions = ref 0 in
  let acks_sent = ref 0 in
  let acks_lost = ref 0 in
  let crashes = ref 0 in
  let inputs_lost_down = ref 0 in
  (* edge statistics survive crash-time Exec.reset in this array *)
  let edge_bytes_acc = Array.make (Graph.n_edges graph) 0 in
  let sources_arr = Array.of_list sources in
  (* schedule the first window of every (node, source) pair with a
     small per-node phase offset so nodes do not fire in lockstep *)
  Array.iteri
    (fun si spec ->
      if spec.rate > 0. then
        for node = 0 to config.n_nodes - 1 do
          let phase = Prng.uniform rng 0. (1. /. spec.rate) in
          Heap.Pqueue.push events phase (Sample (node, si, 0))
        done)
    sources_arr;
  (* the crash/reboot schedule is fixed up front from its own stream *)
  List.iter
    (fun (t, node, what) ->
      Heap.Pqueue.push events t
        (match what with `Crash -> Crash node | `Reboot -> Reboot node))
    (Faults.crash_schedule crash_rng faults ~n_nodes:config.n_nodes
       ~duration:config.duration);
  let schedule t ev = Heap.Pqueue.push events t ev in
  (* congestion backoff: the contention window doubles each time a node
     finds the channel busy or collides, like the TinyOS CSMA layer *)
  let backoff st =
    let window = link.backoff_s *. Float.of_int (1 lsl Int.min st.cw 6) in
    Prng.uniform rng 0. window
  in
  let ensure_attempt now node_id =
    let st = nodes.(node_id) in
    if st.up && (not st.waiting) && not (Queue.is_empty st.queue) then begin
      st.waiting <- true;
      schedule (now +. backoff st) (Attempt (node_id, st.epoch))
    end
  in
  let channel_loss now =
    Faults.channel_loss ge ~now ~base:link.base_loss
  in
  (* admit one transport attempt's fragments to the radio queue; on
     overflow the attempt cannot complete, but admitted siblings still
     burn airtime -- the §4.3 overload effect *)
  let enqueue_attempt st (msg : message) ~t_attempt =
    Hashtbl.replace missing (msg.from_node, msg.mid, t_attempt)
      msg.total_frags;
    let dropped = ref false in
    for _ = 1 to msg.total_frags do
      if Queue.length st.queue < config.tx_queue_packets then
        Queue.add { msg; t_attempt; attempts = 0 } st.queue
      else begin
        incr lost_queue;
        dropped := true
      end
    done;
    if !dropped then Hashtbl.remove missing (msg.from_node, msg.mid, t_attempt);
    not !dropped
  in
  let start_processing now node_id source_op value =
    let st = nodes.(node_id) in
    st.cpu_busy <- true;
    let fired =
      Runtime.Exec.fire ~node:node_id st.exec ~op:source_op ~port:0 value
    in
    sink_outputs := !sink_outputs + List.length fired.sink_values;
    let crossings = fired.crossings in
    let n_packets =
      List.fold_left
        (fun acc (c : Runtime.Exec.crossing) ->
          acc + Link.packets_of_bytes link (Value.size_bytes c.value))
        0 crossings
    in
    let compute_s =
      (Profiler.Platform.seconds config.platform fired.workload
       *. config.os_overhead)
      +. (Float.of_int n_packets *. config.per_packet_cpu_s)
    in
    (* clip the accrual at the simulation horizon: a job admitted near
       the end keeps computing past [duration] but only the in-window
       part is utilisation, else the busy fraction can overshoot 1 by
       a whole job (not just ulps) on short runs *)
    st.busy_time <-
      st.busy_time +. Float.min compute_s (Float.max 0. (config.duration -. now));
    schedule (now +. compute_s) (Cpu_done (node_id, st.epoch));
    (* queue the messages now; they go on air as the channel allows *)
    List.iter
      (fun (c : Runtime.Exec.crossing) ->
        let bytes = Value.size_bytes c.value in
        offered_bytes := !offered_bytes + bytes;
        let total_frags = Link.packets_of_bytes link bytes in
        let msg =
          {
            mid = st.next_mid;
            from_node = node_id;
            edge = c.edge;
            value = c.value;
            total_frags;
          }
        in
        st.next_mid <- st.next_mid + 1;
        incr msgs_sent;
        (* fragments are admitted individually, like a per-packet send
           queue: losing any fragment makes the message undeliverable,
           but admitted siblings still burn airtime -- the §4.3
           overload effect where offering more data delivers less *)
        let admitted = enqueue_attempt st msg ~t_attempt:1 in
        ignore admitted;
        match reliable with
        | None -> ()
        | Some r ->
            (* keep a copy for end-to-end retry; even a queue-overflowed
               first attempt is retried from here *)
            Hashtbl.replace inflight (node_id, msg.mid)
              { if_msg = msg; if_attempts = 1 };
            schedule (now +. Transport.rto r ~attempt:1)
              (Rexmit (node_id, msg.mid)))
      crossings;
    ensure_attempt now node_id
  in
  let fire_server (msg : message) =
    let fired =
      Runtime.Exec.fire ~node:msg.from_node server ~op:msg.edge.dst
        ~port:msg.edge.dst_port msg.value
    in
    sink_outputs := !sink_outputs + List.length fired.sink_values
  in
  (* the basestation acks a fully reassembled message: the ack occupies
     the channel (it is short but not free) and is itself subject to
     the channel loss process *)
  let send_ack now (msg : message) =
    incr acks_sent;
    let air = Link.short_packet_airtime link ~bytes:Transport.ack_bytes in
    channel_busy_until := Float.max !channel_busy_until (now +. air);
    if Prng.bool rng (channel_loss now) then incr acks_lost
    else schedule (now +. air) (Ack_arrive (msg.from_node, msg.mid))
  in
  let deliver_fragment now (pkt : packet) =
    let key = (pkt.msg.from_node, pkt.msg.mid, pkt.t_attempt) in
    match Hashtbl.find_opt missing key with
    | None -> ()
    | Some left when left <= 1 -> (
        Hashtbl.remove missing key;
        match reliable with
        | None ->
            incr msgs_received;
            fire_server pkt.msg
        | Some _ ->
            let dk = (pkt.msg.from_node, pkt.msg.mid) in
            if Hashtbl.mem delivered dk then incr msgs_duplicate
            else begin
              Hashtbl.replace delivered dk ();
              if Hashtbl.mem expired dk then begin
                (* the sender gave up, but the final attempt made it:
                   the message was received after all *)
                Hashtbl.remove expired dk;
                decr msgs_expired
              end;
              incr msgs_received;
              fire_server pkt.msg
            end;
            send_ack now pkt.msg)
    | Some left -> Hashtbl.replace missing key (left - 1)
  in
  let kill_message (pkt : packet) =
    (* one lost fragment dooms this attempt; siblings already queued
       keep transmitting (a NACK-free stack cannot know) *)
    Hashtbl.remove missing (pkt.msg.from_node, pkt.msg.mid, pkt.t_attempt)
  in
  let handle now = function
    | Sample (node_id, si, seq) ->
        let spec = sources_arr.(si) in
        (* next arrival; a drifted node clock stretches the period *)
        let next = now +. (drifts.(node_id) /. spec.rate) in
        if next < config.duration then
          schedule next (Sample (node_id, si, seq + 1));
        incr inputs_offered;
        let st = nodes.(node_id) in
        let value = spec.gen ~node:node_id ~seq in
        if not st.up then incr inputs_lost_down
        else if not st.cpu_busy then begin
          incr inputs_processed;
          start_processing now node_id spec.source value
        end
        else if st.buffered = None then begin
          (* double-buffered ADC: hold exactly one pending window *)
          incr inputs_processed;
          st.buffered <- Some (spec.source, value)
        end
        (* else: missed input event *)
    | Cpu_done (node_id, epoch) -> (
        let st = nodes.(node_id) in
        if epoch = st.epoch then begin
          st.cpu_busy <- false;
          match st.buffered with
          | Some (src, v) ->
              st.buffered <- None;
              start_processing now node_id src v
          | None -> ()
        end)
    | Attempt (node_id, epoch) ->
        let st = nodes.(node_id) in
        if epoch = st.epoch then begin
          st.waiting <- false;
          if not (Queue.is_empty st.queue) then begin
            if now +. 1e-12 >= !channel_busy_until then begin
              (* channel idle: transmit the head-of-line packet *)
              let pkt = Queue.pop st.queue in
              pkt.attempts <- pkt.attempts + 1;
              incr packets_sent;
              let dur = Link.packet_airtime link in
              let tx =
                {
                  sender = node_id;
                  epoch = st.epoch;
                  pkt;
                  start = now;
                  corrupted = false;
                }
              in
              current_tx := Some tx;
              channel_busy_until := now +. dur;
              schedule (now +. dur) Tx_end
            end
            else begin
              (match !current_tx with
              | Some tx when now -. tx.start < link.turnaround_s ->
                  (* carrier not yet detectable: we transmit blindly and
                     collide with the ongoing packet *)
                  tx.corrupted <- true;
                  st.cw <- st.cw + 1;
                  let pkt = Queue.pop st.queue in
                  pkt.attempts <- pkt.attempts + 1;
                  incr packets_sent;
                  incr lost_collision;
                  let dur = Link.packet_airtime link in
                  channel_busy_until :=
                    Float.max !channel_busy_until (now +. dur);
                  if pkt.attempts <= link.retries then begin
                    (* retry later, head of line *)
                    let q = Queue.create () in
                    Queue.add pkt q;
                    Queue.transfer st.queue q;
                    Queue.transfer q st.queue
                  end
                  else kill_message pkt
              | _ -> st.cw <- st.cw + 1);
              ensure_attempt (Float.max now !channel_busy_until) node_id
            end
          end
        end
    | Tx_end -> (
        match !current_tx with
        | None -> ()
        | Some tx ->
            current_tx := None;
            let st = nodes.(tx.sender) in
            if tx.epoch <> st.epoch then
              (* the sender crashed mid-packet; the fragment died with
                 it (the Crash handler marked the tx corrupted and
                 flushed the reassembly state) *)
              ()
            else begin
              (if tx.corrupted then begin
                 incr lost_collision;
                 st.cw <- st.cw + 1;
                 if tx.pkt.attempts <= link.retries then begin
                   let q = Queue.create () in
                   Queue.add tx.pkt q;
                   Queue.transfer st.queue q;
                   Queue.transfer q st.queue
                 end
                 else kill_message tx.pkt
               end
               else begin
                 st.cw <- 0;
                 if Prng.bool rng (channel_loss now) then begin
                   (* clean-channel loss: no link-layer ack, no retry *)
                   incr lost_channel;
                   kill_message tx.pkt
                 end
                 else deliver_fragment now tx.pkt
               end);
              ensure_attempt now tx.sender
            end)
    | Crash node_id ->
        let st = nodes.(node_id) in
        if st.up then begin
          incr crashes;
          st.up <- false;
          st.epoch <- st.epoch + 1;
          (* a dying radio corrupts its own in-flight packet *)
          (match !current_tx with
          | Some tx when tx.sender = node_id -> tx.corrupted <- true
          | _ -> ());
          Queue.clear st.queue;
          st.buffered <- None;
          st.cpu_busy <- false;
          st.waiting <- false;
          st.cw <- 0;
          (* volatile operator state is lost (§2.1.1); keep the edge
             statistics gathered so far *)
          Array.iteri
            (fun eid acc ->
              edge_bytes_acc.(eid) <-
                acc + Runtime.Exec.edge_bytes st.exec eid)
            edge_bytes_acc;
          Runtime.Exec.reset st.exec;
          (* the retransmit buffer is volatile too: every unacked
             message from this node dies, accounted, not silent *)
          let dead =
            Hashtbl.fold
              (fun (n, mid) _ acc ->
                if n = node_id then (n, mid) :: acc else acc)
              inflight []
          in
          List.iter
            (fun key ->
              Hashtbl.remove inflight key;
              if not (Hashtbl.mem delivered key) then begin
                Hashtbl.replace expired key ();
                incr msgs_expired
              end)
            dead;
          (* partially reassembled messages from this node are dead *)
          let stale =
            Hashtbl.fold
              (fun (n, mid, att) _ acc ->
                if n = node_id then (n, mid, att) :: acc else acc)
              missing []
          in
          List.iter (Hashtbl.remove missing) stale
        end
    | Reboot node_id -> nodes.(node_id).up <- true
    | Rexmit (node_id, mid) -> (
        match Hashtbl.find_opt inflight (node_id, mid) with
        | None -> ()  (* acked, expired, or lost to a crash *)
        | Some entry -> (
            match reliable with
            | None -> ()
            | Some r ->
                if entry.if_attempts > r.Transport.max_retries then begin
                  Hashtbl.remove inflight (node_id, mid);
                  if not (Hashtbl.mem delivered (node_id, mid)) then begin
                    Hashtbl.replace expired (node_id, mid) ();
                    incr msgs_expired
                  end
                end
                else begin
                  entry.if_attempts <- entry.if_attempts + 1;
                  incr retransmissions;
                  let st = nodes.(node_id) in
                  ignore
                    (enqueue_attempt st entry.if_msg
                       ~t_attempt:entry.if_attempts);
                  schedule
                    (now +. Transport.rto r ~attempt:entry.if_attempts)
                    (Rexmit (node_id, mid));
                  ensure_attempt now node_id
                end))
    | Ack_arrive (node_id, mid) ->
        (* end-to-end ack: retire the retransmit entry *)
        Hashtbl.remove inflight (node_id, mid)
  in
  let rec loop () =
    match Heap.Pqueue.pop events with
    | None -> ()
    | Some (t, _) when t > config.duration -> ()
    | Some (t, ev) ->
        handle t ev;
        loop ()
  in
  loop ();
  let busy_total = Array.fold_left (fun acc st -> acc +. st.busy_time) 0. nodes in
  let fdiv a b = if b = 0 then 0. else Float.of_int a /. Float.of_int b in
  let input_fraction = fdiv !inputs_processed !inputs_offered in
  let msg_fraction = fdiv !msgs_received !msgs_sent in
  let msgs_pending =
    Hashtbl.fold
      (fun key _ acc -> if Hashtbl.mem delivered key then acc else acc + 1)
      inflight 0
  in
  let edge_bytes_per_sec =
    Array.init (Graph.n_edges graph) (fun eid ->
        let total =
          edge_bytes_acc.(eid)
          + Runtime.Exec.edge_bytes server eid
          + Array.fold_left
              (fun acc st -> acc + Runtime.Exec.edge_bytes st.exec eid)
              0 nodes
        in
        Float.of_int total /. config.duration)
  in
  {
    inputs_offered = !inputs_offered;
    inputs_processed = !inputs_processed;
    msgs_sent = !msgs_sent;
    msgs_received = !msgs_received;
    packets_sent = !packets_sent;
    packets_lost_collision = !lost_collision;
    packets_lost_channel = !lost_channel;
    packets_lost_queue = !lost_queue;
    sink_outputs = !sink_outputs;
    input_fraction;
    msg_fraction;
    goodput_fraction = input_fraction *. msg_fraction;
    node_busy_fraction =
      busy_total /. (config.duration *. Float.of_int config.n_nodes);
    offered_bytes_per_sec = Float.of_int !offered_bytes /. config.duration;
    msgs_duplicate = !msgs_duplicate;
    msgs_expired = !msgs_expired;
    msgs_pending;
    retransmissions = !retransmissions;
    acks_sent = !acks_sent;
    acks_lost = !acks_lost;
    crashes = !crashes;
    inputs_lost_down = !inputs_lost_down;
    edge_bytes_per_sec;
  }

(* The single-hop CSMA testbed routes every mote's messages directly
   to the basestation: a depth-one routing tree.  Exposed as a parent
   array (mote tiers 0..n-1, basestation root last) so the placement
   layer can build a [Placement.Topology.t] over the real topology
   without Netsim depending on the solver. *)
let routing_parents ~n_nodes =
  if n_nodes < 1 then
    invalid_arg "Testbed.routing_parents: need at least one mote";
  Array.init (n_nodes + 1) (fun k -> if k = n_nodes then -1 else n_nodes)
