open Dataflow

type source_spec = {
  source : int;
  rate : float;
  gen : node:int -> seq:int -> Value.t;
}

type config = {
  n_nodes : int;
  platform : Profiler.Platform.t;
  link : Link.t;
  duration : float;
  seed : int;
  tx_queue_packets : int;
  per_packet_cpu_s : float;
  os_overhead : float;
  faults : Faults.t;
  transport : Transport.policy;
  sched : Sched.kind;
  cells : int array option;
  domains : int;
}

let default_config ?(n_nodes = 1) ?(duration = 60.) ?(seed = 1)
    ?(faults = Faults.none) ?(transport = Transport.Unreliable)
    ?(sched = Sched.Heap) ?cells ?(domains = 1) ~platform ~link () =
  {
    n_nodes;
    platform;
    link;
    duration;
    seed;
    tx_queue_packets = 24;
    (* copying and driving the radio costs a few thousand cycles per
       packet regardless of platform: ~0.75 ms on an 8 MHz mote, ~15 us
       on a 400 MHz Gumstix *)
    per_packet_cpu_s = 6000. /. platform.Profiler.Platform.clock_hz;
    os_overhead = 1.15;
    faults;
    transport;
    sched;
    cells;
    domains;
  }

type result = {
  inputs_offered : int;
  inputs_processed : int;
  msgs_sent : int;
  msgs_received : int;
  packets_sent : int;
  packets_lost_collision : int;
  packets_lost_channel : int;
  packets_lost_queue : int;
  sink_outputs : int;
  input_fraction : float;
  msg_fraction : float;
  goodput_fraction : float;
  node_busy_fraction : float;
  offered_bytes_per_sec : float;
  msgs_duplicate : int;
  msgs_expired : int;
  msgs_pending : int;
  retransmissions : int;
  acks_sent : int;
  acks_lost : int;
  crashes : int;
  inputs_lost_down : int;
  edge_bytes_per_sec : float array;
  events_processed : int;
}

(* ---- internal simulation structures ---- *)

type message = {
  mid : int;
  from_node : int;  (* global node id: drives the server-half Exec *)
  from_local : int;  (* cell-local index: keys the per-cell tables *)
  edge : Graph.edge;
  value : Value.t;
  total_frags : int;
}

let dummy_edge = { Graph.eid = 0; src = 0; dst = 0; dst_port = 0 }

let dummy_msg =
  {
    mid = 0;
    from_node = 0;
    from_local = 0;
    edge = dummy_edge;
    value = Value.Unit;
    total_frags = 0;
  }

(* Events are packed into a single non-negative int (<= 62 bits) so
   the scheduler never boxes:

     bits 0..2    tag
     bits 3..23   cell-local node index (21 bits)
     bits 24..    tag-specific payload:
                    Sample            source index (8 bits) then seq
                    Cpu_done/Attempt  node epoch
                    Rexmit/Ack        message id
                    Tx_end/Crash/Reboot  unused *)

let tag_sample = 0
let tag_cpu_done = 1
let tag_attempt = 2
let tag_tx_end = 3
let tag_crash = 4
let tag_reboot = 5
let tag_rexmit = 6
let tag_ack = 7
let node_bits = 21
let node_limit = 1 lsl node_bits

let mk tag node arg = tag lor (node lsl 3) lor (arg lsl 24)

let mk_sample node si seq =
  assert (seq < 1 lsl 30);
  tag_sample lor (node lsl 3) lor (si lsl 24) lor (seq lsl 32)

let ev_tag ev = ev land 7
let ev_node ev = (ev lsr 3) land (node_limit - 1)
let ev_arg ev = ev lsr 24
let ev_si ev = (ev lsr 24) land 0xFF
let ev_seq ev = ev lsr 32

(* Packed table keys.  [node < 2^21] (checked per cell), [mid < 2^31]
   and [attempt < 2^10] (asserted), so both packs stay within the 62
   non-negative bits of a 63-bit OCaml int. *)

let key2 node mid =
  assert (mid < 1 lsl 31);
  (node lsl 31) lor mid

let key2_node k = k lsr 31

let key3 node mid att =
  assert (mid < 1 lsl 31 && att < 1 lsl 10);
  (((node lsl 31) lor mid) lsl 10) lor att

let key3_node k = k lsr 41

(* sender-side retransmit buffer: a growable slot pool so the reliable
   path stores no boxed per-message records *)
type pool = {
  mutable pm : message array;
  mutable pt : int array;  (* transport attempts *)
  mutable pfree : int array;
  mutable pnfree : int;
  mutable ptop : int;
}

let pool_create () =
  {
    pm = Array.make 64 dummy_msg;
    pt = Array.make 64 0;
    pfree = Array.make 64 0;
    pnfree = 0;
    ptop = 0;
  }

let pool_alloc p msg =
  let slot =
    if p.pnfree > 0 then begin
      p.pnfree <- p.pnfree - 1;
      p.pfree.(p.pnfree)
    end
    else begin
      let cap = Array.length p.pm in
      if p.ptop = cap then begin
        let nm = Array.make (2 * cap) dummy_msg in
        let nt = Array.make (2 * cap) 0 in
        Array.blit p.pm 0 nm 0 cap;
        Array.blit p.pt 0 nt 0 cap;
        p.pm <- nm;
        p.pt <- nt
      end;
      let s = p.ptop in
      p.ptop <- p.ptop + 1;
      s
    end
  in
  p.pm.(slot) <- msg;
  p.pt.(slot) <- 1;
  slot

let pool_release p slot =
  p.pm.(slot) <- dummy_msg;
  let cap = Array.length p.pfree in
  if p.pnfree = cap then begin
    let nf = Array.make (2 * cap) 0 in
    Array.blit p.pfree 0 nf 0 cap;
    p.pfree <- nf
  end;
  p.pfree.(p.pnfree) <- slot;
  p.pnfree <- p.pnfree + 1

(* everything one cell's simulation produced, joined by [run] *)
type cell_out = {
  o_offered : int;
  o_processed : int;
  o_msent : int;
  o_mrecv : int;
  o_psent : int;
  o_coll : int;
  o_chan : int;
  o_queue : int;
  o_sink : int;
  o_offered_bytes : int;
  o_dup : int;
  o_exp : int;
  o_pend : int;
  o_rexmit : int;
  o_acks : int;
  o_acklost : int;
  o_crashes : int;
  o_down : int;
  o_busy : float;
  o_edge : int array;
  o_events : int;
  o_deliv : (float * message) list;  (* newest first; [] when inline *)
}

(* Simulate one collision domain.  [server = Some exec] is the
   single-cell legacy mode: the server half fires inline, and the PRNG
   streams are the historical ones, so the run is byte-identical to
   the pre-scale-out testbed.  [server = None] defers deliveries to
   the caller (which fires the server half after joining all cells)
   and derives the cell's streams as [derive seed [2; cell(; k)]]. *)
let sim_cell (config : config) ~graph ~node_mask ~sources_arr
    ~(probe : float -> int -> unit) ~server ~cell ~(g_of_l : int array) =
  let m = Array.length g_of_l in
  if m > node_limit then
    invalid_arg "Testbed.run: a cell holds more than 2^21 nodes";
  let link = config.link in
  let faults = config.faults in
  let inline = match server with Some _ -> true | None -> false in
  (* Seed derivation (see prng.mli): in legacy single-cell mode the
     root seed drives the primary channel/CSMA stream exactly as it
     always has, with fault streams at [1; k]; sharded cells each get
     an independent family at [2; cell(; k)] so a cell's draws do not
     depend on how many cells or domains surround it. *)
  let rng, drift_rng, crash_rng, burst_rng =
    if inline then
      ( Prng.create config.seed,
        Prng.create (Prng.derive config.seed [ 1; 0 ]),
        Prng.create (Prng.derive config.seed [ 1; 1 ]),
        Prng.create (Prng.derive config.seed [ 1; 2 ]) )
    else
      ( Prng.create (Prng.derive config.seed [ 2; cell ]),
        Prng.create (Prng.derive config.seed [ 2; cell; 0 ]),
        Prng.create (Prng.derive config.seed [ 2; cell; 1 ]),
        Prng.create (Prng.derive config.seed [ 2; cell; 2 ]) )
  in
  let ge = Faults.channel burst_rng faults.Faults.burst in
  let drifts = Faults.drifts drift_rng faults ~n_nodes:m in
  let reliable =
    match config.transport with
    | Transport.Unreliable -> None
    | Transport.Reliable r -> Some r
  in
  let execs =
    Array.init m (fun _ ->
        Runtime.Exec.create ~member:(fun i -> node_mask.(i)) graph)
  in
  (* per-node state, struct-of-arrays: the event loop touches flat
     unboxed arrays only *)
  (* ring capacity is one beyond the admission bound: the in-flight
     packet is popped before new admissions and may be pushed back at
     the head of a full queue when its transmission collides *)
  let qcap = Int.max 1 config.tx_queue_packets + 1 in
  let q_msg = Array.make (m * qcap) dummy_msg in
  let q_att = Array.make (m * qcap) 0 in
  let q_tries = Array.make (m * qcap) 0 in
  let q_head = Array.make m 0 in
  let q_len = Array.make m 0 in
  let cpu_busy = Array.make m false in
  let buf_src = Array.make m (-1) in
  let buf_val = Array.make m Value.Unit in
  let waiting = Array.make m false in
  let cw = Array.make m 0 in
  let busy = Array.make m 0. in
  let next_mid = Array.make m 0 in
  let up = Array.make m true in
  let epoch = Array.make m 0 in
  (* the wheel tick tracks the natural event spacing: a fraction of a
     packet airtime, but no finer than 1 us (ordering never depends on
     the tick, only bucket occupancy does) *)
  let tick = Float.max 1e-6 (Link.packet_airtime link /. 4.) in
  let events =
    Sched.create ~kind:config.sched ~capacity:(Int.max 64 (2 * m)) ~tick ()
  in
  (* shared-channel state *)
  let busy_until = ref 0. in
  let tx_active = ref false in
  let tx_sender = ref 0 in
  let tx_epoch = ref 0 in
  let tx_msg = ref dummy_msg in
  let tx_att = ref 0 in
  let tx_tries = ref 0 in
  let tx_start = ref 0. in
  let tx_corrupted = ref false in
  (* reassembly: key3 (node, mid, transport attempt) -> fragments missing *)
  let missing = Itbl.create ~capacity:256 () in
  (* reliable transport: key2 (node, mid) -> pool slot / presence *)
  let inflight = Itbl.create ~capacity:64 () in
  let delivered = Itbl.create ~capacity:256 () in
  (* messages written off as expired whose last attempt is still in
     the air; a late delivery moves them back to received *)
  let expired = Itbl.create ~capacity:32 () in
  let pool = pool_create () in
  (* counters *)
  let inputs_offered = ref 0 in
  let inputs_processed = ref 0 in
  let msgs_sent = ref 0 in
  let msgs_received = ref 0 in
  let packets_sent = ref 0 in
  let lost_collision = ref 0 in
  let lost_channel = ref 0 in
  let lost_queue = ref 0 in
  let sink_outputs = ref 0 in
  let offered_bytes = ref 0 in
  let msgs_duplicate = ref 0 in
  let msgs_expired = ref 0 in
  let retransmissions = ref 0 in
  let acks_sent = ref 0 in
  let acks_lost = ref 0 in
  let crashes = ref 0 in
  let inputs_lost_down = ref 0 in
  let handled = ref 0 in
  let deliveries = ref [] in
  (* edge statistics survive crash-time Exec.reset in this array *)
  let edge_acc = Array.make (Graph.n_edges graph) 0 in
  (* schedule the first window of every (node, source) pair with a
     small per-node phase offset so nodes do not fire in lockstep *)
  Array.iteri
    (fun si (spec : source_spec) ->
      if spec.rate > 0. then
        for node = 0 to m - 1 do
          let phase = Prng.uniform rng 0. (1. /. spec.rate) in
          Sched.push events phase (mk_sample node si 0)
        done)
    sources_arr;
  (* the crash/reboot schedule is fixed up front from its own stream *)
  List.iter
    (fun (t, node, what) ->
      Sched.push events t
        (match what with
        | `Crash -> mk tag_crash node 0
        | `Reboot -> mk tag_reboot node 0))
    (Faults.crash_schedule crash_rng faults ~n_nodes:m
       ~duration:config.duration);
  let schedule t ev = Sched.push events t ev in
  (* congestion backoff: the contention window doubles each time a node
     finds the channel busy or collides, like the TinyOS CSMA layer *)
  let backoff n =
    let window = link.Link.backoff_s *. Float.of_int (1 lsl Int.min cw.(n) 6) in
    Prng.uniform rng 0. window
  in
  let ensure_attempt now n =
    if up.(n) && (not waiting.(n)) && q_len.(n) > 0 then begin
      waiting.(n) <- true;
      schedule (now +. backoff n) (mk tag_attempt n epoch.(n))
    end
  in
  let channel_loss now =
    Faults.channel_loss ge ~now ~base:link.Link.base_loss
  in
  (* radio-queue ring helpers *)
  let q_push_back n msg att tries =
    assert (q_len.(n) < qcap);
    let i = (n * qcap) + ((q_head.(n) + q_len.(n)) mod qcap) in
    q_msg.(i) <- msg;
    q_att.(i) <- att;
    q_tries.(i) <- tries;
    q_len.(n) <- q_len.(n) + 1
  in
  let q_push_front n msg att tries =
    assert (q_len.(n) < qcap);
    let h = (q_head.(n) + qcap - 1) mod qcap in
    q_head.(n) <- h;
    let i = (n * qcap) + h in
    q_msg.(i) <- msg;
    q_att.(i) <- att;
    q_tries.(i) <- tries;
    q_len.(n) <- q_len.(n) + 1
  in
  (* admit one transport attempt's fragments to the radio queue; on
     overflow the attempt cannot complete, but admitted siblings still
     burn airtime -- the §4.3 overload effect *)
  let enqueue_attempt n (msg : message) ~t_attempt =
    Itbl.set missing (key3 msg.from_local msg.mid t_attempt) msg.total_frags;
    let dropped = ref false in
    for _ = 1 to msg.total_frags do
      if q_len.(n) < config.tx_queue_packets then q_push_back n msg t_attempt 0
      else begin
        incr lost_queue;
        dropped := true
      end
    done;
    if !dropped then Itbl.remove missing (key3 msg.from_local msg.mid t_attempt);
    not !dropped
  in
  let start_processing now n source_op value =
    cpu_busy.(n) <- true;
    let g = g_of_l.(n) in
    let fired =
      Runtime.Exec.fire ~node:g execs.(n) ~op:source_op ~port:0 value
    in
    sink_outputs := !sink_outputs + List.length fired.sink_values;
    let crossings = fired.crossings in
    let n_packets =
      List.fold_left
        (fun acc (c : Runtime.Exec.crossing) ->
          acc + Link.packets_of_bytes link (Value.size_bytes c.value))
        0 crossings
    in
    let compute_s =
      (Profiler.Platform.seconds config.platform fired.workload
       *. config.os_overhead)
      +. (Float.of_int n_packets *. config.per_packet_cpu_s)
    in
    (* clip the accrual at the simulation horizon: a job admitted near
       the end keeps computing past [duration] but only the in-window
       part is utilisation, else the busy fraction can overshoot 1 by
       a whole job (not just ulps) on short runs *)
    busy.(n) <-
      busy.(n) +. Float.min compute_s (Float.max 0. (config.duration -. now));
    schedule (now +. compute_s) (mk tag_cpu_done n epoch.(n));
    (* queue the messages now; they go on air as the channel allows *)
    List.iter
      (fun (c : Runtime.Exec.crossing) ->
        let bytes = Value.size_bytes c.value in
        offered_bytes := !offered_bytes + bytes;
        let total_frags = Link.packets_of_bytes link bytes in
        let msg =
          {
            mid = next_mid.(n);
            from_node = g;
            from_local = n;
            edge = c.edge;
            value = c.value;
            total_frags;
          }
        in
        next_mid.(n) <- next_mid.(n) + 1;
        incr msgs_sent;
        (* fragments are admitted individually, like a per-packet send
           queue: losing any fragment makes the message undeliverable,
           but admitted siblings still burn airtime -- the §4.3
           overload effect where offering more data delivers less *)
        let admitted = enqueue_attempt n msg ~t_attempt:1 in
        ignore admitted;
        match reliable with
        | None -> ()
        | Some r ->
            (* keep a copy for end-to-end retry; even a queue-overflowed
               first attempt is retried from here *)
            Itbl.set inflight (key2 n msg.mid) (pool_alloc pool msg);
            schedule
              (now +. Transport.rto r ~attempt:1)
              (mk tag_rexmit n msg.mid))
      crossings;
    ensure_attempt now n
  in
  let deliver_to_server now (msg : message) =
    match server with
    | Some sx ->
        let fired =
          Runtime.Exec.fire ~node:msg.from_node sx ~op:msg.edge.dst
            ~port:msg.edge.dst_port msg.value
        in
        sink_outputs := !sink_outputs + List.length fired.sink_values
    | None -> deliveries := (now, msg) :: !deliveries
  in
  (* the basestation acks a fully reassembled message: the ack occupies
     the channel (it is short but not free) and is itself subject to
     the channel loss process *)
  let send_ack now (msg : message) =
    incr acks_sent;
    let air = Link.short_packet_airtime link ~bytes:Transport.ack_bytes in
    busy_until := Float.max !busy_until (now +. air);
    if Prng.bool rng (channel_loss now) then incr acks_lost
    else schedule (now +. air) (mk tag_ack msg.from_local msg.mid)
  in
  let deliver_fragment now (msg : message) t_attempt =
    let key = key3 msg.from_local msg.mid t_attempt in
    let left = Itbl.get missing key in
    if left < 0 then ()
    else if left <= 1 then begin
      Itbl.remove missing key;
      match reliable with
      | None ->
          incr msgs_received;
          deliver_to_server now msg
      | Some _ ->
          let dk = key2 msg.from_local msg.mid in
          if Itbl.mem delivered dk then incr msgs_duplicate
          else begin
            Itbl.set delivered dk 1;
            if Itbl.mem expired dk then begin
              (* the sender gave up, but the final attempt made it:
                 the message was received after all *)
              Itbl.remove expired dk;
              decr msgs_expired
            end;
            incr msgs_received;
            deliver_to_server now msg
          end;
          send_ack now msg
    end
    else Itbl.set missing key (left - 1)
  in
  let kill_message (msg : message) t_attempt =
    (* one lost fragment dooms this attempt; siblings already queued
       keep transmitting (a NACK-free stack cannot know) *)
    Itbl.remove missing (key3 msg.from_local msg.mid t_attempt)
  in
  let handle now ev =
    match ev_tag ev with
    | 0 (* Sample *) ->
        let n = ev_node ev in
        let si = ev_si ev in
        let seq = ev_seq ev in
        let spec : source_spec = sources_arr.(si) in
        (* next arrival; a drifted node clock stretches the period *)
        let next = now +. (drifts.(n) /. spec.rate) in
        if next < config.duration then schedule next (mk_sample n si (seq + 1));
        incr inputs_offered;
        let value = spec.gen ~node:g_of_l.(n) ~seq in
        if not up.(n) then incr inputs_lost_down
        else if not cpu_busy.(n) then begin
          incr inputs_processed;
          start_processing now n spec.source value
        end
        else if buf_src.(n) < 0 then begin
          (* double-buffered ADC: hold exactly one pending window *)
          incr inputs_processed;
          buf_src.(n) <- spec.source;
          buf_val.(n) <- value
        end
        (* else: missed input event *)
    | 1 (* Cpu_done *) ->
        let n = ev_node ev in
        if ev_arg ev = epoch.(n) then begin
          cpu_busy.(n) <- false;
          if buf_src.(n) >= 0 then begin
            let src = buf_src.(n) and v = buf_val.(n) in
            buf_src.(n) <- -1;
            buf_val.(n) <- Value.Unit;
            start_processing now n src v
          end
        end
    | 2 (* Attempt *) ->
        let n = ev_node ev in
        if ev_arg ev = epoch.(n) then begin
          waiting.(n) <- false;
          if q_len.(n) > 0 then begin
            if now +. 1e-12 >= !busy_until then begin
              (* channel idle: transmit the head-of-line packet *)
              let i = (n * qcap) + q_head.(n) in
              let msg = q_msg.(i) and att = q_att.(i) in
              let tries = q_tries.(i) + 1 in
              q_head.(n) <- (q_head.(n) + 1) mod qcap;
              q_len.(n) <- q_len.(n) - 1;
              incr packets_sent;
              let dur = Link.packet_airtime link in
              tx_active := true;
              tx_sender := n;
              tx_epoch := epoch.(n);
              tx_msg := msg;
              tx_att := att;
              tx_tries := tries;
              tx_start := now;
              tx_corrupted := false;
              busy_until := now +. dur;
              schedule (now +. dur) tag_tx_end
            end
            else begin
              (if !tx_active && now -. !tx_start < link.Link.turnaround_s
               then begin
                 (* carrier not yet detectable: we transmit blindly and
                    collide with the ongoing packet *)
                 tx_corrupted := true;
                 cw.(n) <- cw.(n) + 1;
                 let i = (n * qcap) + q_head.(n) in
                 let msg = q_msg.(i) and att = q_att.(i) in
                 let tries = q_tries.(i) + 1 in
                 q_head.(n) <- (q_head.(n) + 1) mod qcap;
                 q_len.(n) <- q_len.(n) - 1;
                 incr packets_sent;
                 incr lost_collision;
                 let dur = Link.packet_airtime link in
                 busy_until := Float.max !busy_until (now +. dur);
                 if tries <= link.Link.retries then
                   (* retry later, head of line *)
                   q_push_front n msg att tries
                 else kill_message msg att
               end
               else cw.(n) <- cw.(n) + 1);
              ensure_attempt (Float.max now !busy_until) n
            end
          end
        end
    | 3 (* Tx_end *) ->
        if !tx_active then begin
          tx_active := false;
          let n = !tx_sender in
          if !tx_epoch <> epoch.(n) then
            (* the sender crashed mid-packet; the fragment died with
               it (the Crash handler marked the tx corrupted and
               flushed the reassembly state) *)
            ()
          else begin
            (if !tx_corrupted then begin
               incr lost_collision;
               cw.(n) <- cw.(n) + 1;
               if !tx_tries <= link.Link.retries then
                 q_push_front n !tx_msg !tx_att !tx_tries
               else kill_message !tx_msg !tx_att
             end
             else begin
               cw.(n) <- 0;
               if Prng.bool rng (channel_loss now) then begin
                 (* clean-channel loss: no link-layer ack, no retry *)
                 incr lost_channel;
                 kill_message !tx_msg !tx_att
               end
               else deliver_fragment now !tx_msg !tx_att
             end);
            ensure_attempt now n
          end
        end
    | 4 (* Crash *) ->
        let n = ev_node ev in
        if up.(n) then begin
          incr crashes;
          up.(n) <- false;
          epoch.(n) <- epoch.(n) + 1;
          (* a dying radio corrupts its own in-flight packet *)
          if !tx_active && !tx_sender = n then tx_corrupted := true;
          q_len.(n) <- 0;
          buf_src.(n) <- -1;
          buf_val.(n) <- Value.Unit;
          cpu_busy.(n) <- false;
          waiting.(n) <- false;
          cw.(n) <- 0;
          (* volatile operator state is lost (§2.1.1); keep the edge
             statistics gathered so far *)
          Array.iteri
            (fun eid acc ->
              edge_acc.(eid) <- acc + Runtime.Exec.edge_bytes execs.(n) eid)
            edge_acc;
          Runtime.Exec.reset execs.(n);
          (* the retransmit buffer is volatile too: every unacked
             message from this node dies, accounted, not silent *)
          let dead =
            Itbl.fold
              (fun k _ acc -> if key2_node k = n then k :: acc else acc)
              inflight []
          in
          List.iter
            (fun k ->
              pool_release pool (Itbl.get inflight k);
              Itbl.remove inflight k;
              if not (Itbl.mem delivered k) then begin
                Itbl.set expired k 1;
                incr msgs_expired
              end)
            dead;
          (* partially reassembled messages from this node are dead *)
          let stale =
            Itbl.fold
              (fun k _ acc -> if key3_node k = n then k :: acc else acc)
              missing []
          in
          List.iter (Itbl.remove missing) stale
        end
    | 5 (* Reboot *) -> up.(ev_node ev) <- true
    | 6 (* Rexmit *) -> (
        let n = ev_node ev in
        let mid = ev_arg ev in
        let slot = Itbl.get inflight (key2 n mid) in
        if slot >= 0 then
          (* else: acked, expired, or lost to a crash *)
          match reliable with
          | None -> ()
          | Some r ->
              if pool.pt.(slot) > r.Transport.max_retries then begin
                Itbl.remove inflight (key2 n mid);
                pool_release pool slot;
                if not (Itbl.mem delivered (key2 n mid)) then begin
                  Itbl.set expired (key2 n mid) 1;
                  incr msgs_expired
                end
              end
              else begin
                pool.pt.(slot) <- pool.pt.(slot) + 1;
                incr retransmissions;
                ignore
                  (enqueue_attempt n pool.pm.(slot) ~t_attempt:pool.pt.(slot));
                schedule
                  (now +. Transport.rto r ~attempt:pool.pt.(slot))
                  (mk tag_rexmit n mid);
                ensure_attempt now n
              end)
    | _ (* Ack_arrive *) ->
        (* end-to-end ack: retire the retransmit entry *)
        let n = ev_node ev in
        let k = key2 n (ev_arg ev) in
        let slot = Itbl.get inflight k in
        if slot >= 0 then begin
          Itbl.remove inflight k;
          pool_release pool slot
        end
  in
  let rec loop () =
    if Sched.pop events then begin
      let t = Sched.time events in
      if t <= config.duration then begin
        let ev = Sched.event events in
        incr handled;
        probe t ev;
        handle t ev;
        loop ()
      end
    end
  in
  loop ();
  {
    o_offered = !inputs_offered;
    o_processed = !inputs_processed;
    o_msent = !msgs_sent;
    o_mrecv = !msgs_received;
    o_psent = !packets_sent;
    o_coll = !lost_collision;
    o_chan = !lost_channel;
    o_queue = !lost_queue;
    o_sink = !sink_outputs;
    o_offered_bytes = !offered_bytes;
    o_dup = !msgs_duplicate;
    o_exp = !msgs_expired;
    o_pend =
      Itbl.fold
        (fun k _ acc -> if Itbl.mem delivered k then acc else acc + 1)
        inflight 0;
    o_rexmit = !retransmissions;
    o_acks = !acks_sent;
    o_acklost = !acks_lost;
    o_crashes = !crashes;
    o_down = !inputs_lost_down;
    o_busy = Array.fold_left (fun acc b -> acc +. b) 0. busy;
    o_edge =
      Array.init (Graph.n_edges graph) (fun eid ->
          edge_acc.(eid)
          + Array.fold_left
              (fun acc ex -> acc + Runtime.Exec.edge_bytes ex eid)
              0 execs);
    o_events = !handled;
    o_deliv = !deliveries;
  }

let run ?probe config ~graph ~node_of ~sources =
  if config.n_nodes <= 0 then invalid_arg "Testbed.run: need at least one node";
  if config.domains < 1 then invalid_arg "Testbed.run: domains must be >= 1";
  List.iter
    (fun s ->
      if not (node_of s.source) then
        invalid_arg "Testbed.run: source operator not placed on the node")
    sources;
  let sources_arr = Array.of_list sources in
  if Array.length sources_arr > 256 then
    invalid_arg "Testbed.run: at most 256 sources";
  let node_mask = Array.init (Graph.n_ops graph) node_of in
  let replicated i =
    (Graph.op graph i).Op.namespace = Op.Node && not node_mask.(i)
  in
  let server =
    Runtime.Exec.create ~replicated ~member:(fun i -> not node_mask.(i)) graph
  in
  let probe = match probe with None -> fun _ _ -> () | Some f -> f in
  let inline, groups =
    match config.cells with
    | None -> (true, [| Array.init config.n_nodes (fun i -> i) |])
    | Some ca ->
        if Array.length ca <> config.n_nodes then
          invalid_arg "Testbed.run: cells length must equal n_nodes";
        let ncells =
          Array.fold_left
            (fun acc c ->
              if c < 0 then invalid_arg "Testbed.run: negative cell id";
              Int.max acc (c + 1))
            0 ca
        in
        let counts = Array.make ncells 0 in
        Array.iter (fun c -> counts.(c) <- counts.(c) + 1) ca;
        Array.iter
          (fun k -> if k = 0 then invalid_arg "Testbed.run: empty cell")
          counts;
        let out = Array.init ncells (fun c -> Array.make counts.(c) 0) in
        let fill = Array.make ncells 0 in
        Array.iteri
          (fun g c ->
            out.(c).(fill.(c)) <- g;
            fill.(c) <- fill.(c) + 1)
          ca;
        (false, out)
  in
  let ncells = Array.length groups in
  let sim c =
    sim_cell config ~graph ~node_mask ~sources_arr ~probe
      ~server:(if inline then Some server else None)
      ~cell:c ~g_of_l:groups.(c)
  in
  let outs = Array.make ncells None in
  let nd = Int.min config.domains ncells in
  (* Cells are mutually independent (disjoint nodes, own PRNG streams,
     own scheduler and tables), so sharding them over Domains changes
     nothing but wall-clock time; the join below reads them back in
     cell-index order, which makes every aggregate and the server
     firing order a pure function of the cell decomposition. *)
  if nd <= 1 then
    for c = 0 to ncells - 1 do
      outs.(c) <- Some (sim c)
    done
  else begin
    let worker d () =
      let c = ref d in
      while !c < ncells do
        outs.(!c) <- Some (sim !c);
        c := !c + nd
      done
    in
    let spawned = Array.init (nd - 1) (fun i -> Domain.spawn (worker (i + 1))) in
    worker 0 ();
    Array.iter Domain.join spawned
  end;
  let outs =
    Array.map (function Some o -> o | None -> assert false) outs
  in
  let sum f = Array.fold_left (fun acc o -> acc + f o) 0 outs in
  let sink_outputs = ref (sum (fun o -> o.o_sink)) in
  (if not inline then begin
     (* fire the server half over the merged delivery log: cell logs
        are time-sorted already, so ordering by (time, cell, index) is
        the deterministic interleaving shared by every domain count *)
     let entries =
       Array.to_list outs
       |> List.mapi (fun c o ->
              List.rev o.o_deliv |> List.mapi (fun i (t, msg) -> (t, c, i, msg)))
       |> List.concat
     in
     let entries =
       List.sort
         (fun (t1, c1, i1, _) (t2, c2, i2, _) ->
           let ct = Float.compare t1 t2 in
           if ct <> 0 then ct
           else
             let cc = Int.compare c1 c2 in
             if cc <> 0 then cc else Int.compare i1 i2)
         entries
     in
     List.iter
       (fun (_, _, _, (msg : message)) ->
         let fired =
           Runtime.Exec.fire ~node:msg.from_node server ~op:msg.edge.dst
             ~port:msg.edge.dst_port msg.value
         in
         sink_outputs := !sink_outputs + List.length fired.sink_values)
       entries
   end);
  let inputs_offered = sum (fun o -> o.o_offered) in
  let inputs_processed = sum (fun o -> o.o_processed) in
  let msgs_sent = sum (fun o -> o.o_msent) in
  let msgs_received = sum (fun o -> o.o_mrecv) in
  let busy_total = Array.fold_left (fun acc o -> acc +. o.o_busy) 0. outs in
  let fdiv a b = if b = 0 then 0. else Float.of_int a /. Float.of_int b in
  let input_fraction = fdiv inputs_processed inputs_offered in
  let msg_fraction = fdiv msgs_received msgs_sent in
  let edge_bytes_per_sec =
    Array.init (Graph.n_edges graph) (fun eid ->
        let total =
          Runtime.Exec.edge_bytes server eid + sum (fun o -> o.o_edge.(eid))
        in
        Float.of_int total /. config.duration)
  in
  {
    inputs_offered;
    inputs_processed;
    msgs_sent;
    msgs_received;
    packets_sent = sum (fun o -> o.o_psent);
    packets_lost_collision = sum (fun o -> o.o_coll);
    packets_lost_channel = sum (fun o -> o.o_chan);
    packets_lost_queue = sum (fun o -> o.o_queue);
    sink_outputs = !sink_outputs;
    input_fraction;
    msg_fraction;
    goodput_fraction = input_fraction *. msg_fraction;
    node_busy_fraction =
      busy_total /. (config.duration *. Float.of_int config.n_nodes);
    offered_bytes_per_sec =
      Float.of_int (sum (fun o -> o.o_offered_bytes)) /. config.duration;
    msgs_duplicate = sum (fun o -> o.o_dup);
    msgs_expired = sum (fun o -> o.o_exp);
    msgs_pending = sum (fun o -> o.o_pend);
    retransmissions = sum (fun o -> o.o_rexmit);
    acks_sent = sum (fun o -> o.o_acks);
    acks_lost = sum (fun o -> o.o_acklost);
    crashes = sum (fun o -> o.o_crashes);
    inputs_lost_down = sum (fun o -> o.o_down);
    edge_bytes_per_sec;
    events_processed = sum (fun o -> o.o_events);
  }

(* The single-hop CSMA testbed routes every mote's messages directly
   to the basestation: a depth-one routing tree.  Exposed as a parent
   array (mote tiers 0..n-1, basestation root last) so the placement
   layer can build a [Placement.Topology.t] over the real topology
   without Netsim depending on the solver. *)
let routing_parents ~n_nodes =
  if n_nodes < 1 then
    invalid_arg "Testbed.routing_parents: need at least one mote";
  Array.init (n_nodes + 1) (fun k -> if k = n_nodes then -1 else n_nodes)

(* ---- synthetic fleets ---- *)

type fleet = {
  graph : Graph.t;
  source_op : int;
  sources : source_spec list;
  cells : int array;
  parents : int array;
}

let synthetic ~nodes ~seed ?(cell_size = 16) ?(rate = 2.)
    ?(payload_bytes = 110) ?(shape = `Dary 4) () =
  if nodes < 1 then invalid_arg "Testbed.synthetic: need at least one node";
  if cell_size < 1 then invalid_arg "Testbed.synthetic: cell_size must be >= 1";
  let b = Builder.create () in
  let s = Builder.in_node b (fun () -> Builder.source b ~name:"synthetic" ()) in
  Builder.sink b ~name:"collect" s;
  let graph = Builder.build b in
  let source_op = Builder.op_id s in
  (* one shared immutable payload: [gen] must be thread-safe because
     cells sample concurrently under [domains > 1] *)
  let payload =
    Value.Int16_arr (Array.make (Int.max 1 ((payload_bytes - 2) / 2)) 0)
  in
  let sources =
    [ { source = source_op; rate; gen = (fun ~node:_ ~seq:_ -> payload) } ]
  in
  let ncells = (nodes + cell_size - 1) / cell_size in
  let cells = Array.init nodes (fun i -> i / cell_size) in
  (* cell tier k parents strictly later tiers; basestation root last *)
  let parents = Array.make (ncells + 1) ncells in
  parents.(ncells) <- -1;
  (match shape with
  | `Star -> ()
  | `Dary d ->
      if d < 1 then invalid_arg "Testbed.synthetic: tree arity must be >= 1";
      (* reversed heap numbering keeps parents.(k) > k with the root
         at the end *)
      for i = 0 to ncells - 1 do
        let x = ncells - 1 - i in
        parents.(i) <-
          (if x = 0 then ncells else ncells - 1 - ((x - 1) / d))
      done
  | `Random ->
      let rng = Prng.create (Prng.derive seed [ 3 ]) in
      for i = 0 to ncells - 1 do
        parents.(i) <- i + 1 + Prng.int rng (ncells - i)
      done);
  { graph; source_op; sources; cells; parents }
