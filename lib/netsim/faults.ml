type burst = {
  to_bad_rate : float;
  to_good_rate : float;
  bad_loss : float;
}

type t = {
  crash_rate : float;
  reboot_s : float;
  burst : burst option;
  clock_drift : float;
}

let none = { crash_rate = 0.; reboot_s = 0.; burst = None; clock_drift = 0. }

let is_none f =
  f.crash_rate = 0. && f.burst = None && f.clock_drift = 0.

let burst_of_loss ?(mean_burst_s = 5.) p =
  if p <= 0. || p >= 1. then
    invalid_arg "Faults.burst_of_loss: loss must be in (0, 1)";
  (* time-averaged extra loss = P(bad) * bad_loss with
     P(bad) = to_bad / (to_bad + to_good) *)
  let bad_loss = Float.min 1.0 (Float.max 0.5 (p *. 1.25)) in
  let p_bad = p /. bad_loss in
  let to_good_rate = 1. /. mean_burst_s in
  let to_bad_rate = to_good_rate *. p_bad /. (1. -. p_bad) in
  { to_bad_rate; to_good_rate; bad_loss }

(* ---- Gilbert–Elliott channel ---- *)

type channel = {
  spec : burst option;
  rng : Prng.t;
  mutable bad : bool;
  mutable next_flip : float;
}

let channel rng spec =
  match spec with
  | None -> { spec; rng; bad = false; next_flip = Float.infinity }
  | Some b ->
      (* start in Good; first flip exponentially distributed *)
      { spec; rng; bad = false; next_flip = Prng.exponential rng b.to_bad_rate }

let advance ch now =
  match ch.spec with
  | None -> ()
  | Some b ->
      while ch.next_flip <= now do
        ch.bad <- not ch.bad;
        let rate = if ch.bad then b.to_good_rate else b.to_bad_rate in
        ch.next_flip <- ch.next_flip +. Prng.exponential ch.rng rate
      done

let channel_loss ch ~now ~base =
  advance ch now;
  match ch.spec with
  | Some b when ch.bad -> Float.max base b.bad_loss
  | _ -> base

let channel_bad ch ~now =
  advance ch now;
  ch.bad

(* ---- crash schedule ---- *)

let crash_schedule rng f ~n_nodes ~duration =
  if f.crash_rate <= 0. then []
  else begin
    let events = ref [] in
    for node = 0 to n_nodes - 1 do
      let t = ref (Prng.exponential rng f.crash_rate) in
      while !t < duration do
        events := (!t, node, `Crash) :: !events;
        let up_again = !t +. f.reboot_s in
        if up_again < duration then
          events := (up_again, node, `Reboot) :: !events;
        t := up_again +. Prng.exponential rng f.crash_rate
      done
    done;
    List.sort
      (fun (ta, na, _) (tb, nb, _) -> compare (ta, na) (tb, nb))
      !events
  end

let drifts rng f ~n_nodes =
  if f.clock_drift = 0. then Array.make n_nodes 1.0
  else
    Array.init n_nodes (fun _ ->
        Prng.uniform rng (1. -. f.clock_drift) (1. +. f.clock_drift))
