open Dataflow

type point = {
  offered_msgs_per_sec : float;
  reception : float;
  goodput_bytes_per_sec : float;
}

(* A two-operator probe program: node source -> server sink. *)
let probe_graph () =
  let b = Builder.create () in
  let src = Builder.in_node b (fun () -> Builder.source b ~name:"probe" ()) in
  Builder.sink b ~name:"collect" src;
  (Builder.build b, Builder.op_id src)

let measure ?(payload_bytes = 24) ?(duration = 30.) ?(seed = 99) ~n_nodes
    ~link rate =
  (* stretch the run so at least ~100 messages are observed per node;
     low-rate points would otherwise be statistically meaningless *)
  let duration = Float.max duration (100. /. Float.max 0.01 rate) in
  let graph, src = probe_graph () in
  let payload = Array.make (Int.max 1 ((payload_bytes - 2) / 2)) 0 in
  let config =
    {
      Testbed.n_nodes;
      platform = Profiler.Platform.tmote_sky;
      link;
      duration;
      seed;
      tx_queue_packets = 24;
      per_packet_cpu_s = 0.;  (* isolate the radio *)
      os_overhead = 1.0;
      faults = Faults.none;
      transport = Transport.Unreliable;
      sched = Sched.Heap;
      cells = None;
      domains = 1;
    }
  in
  let sources =
    [ { Testbed.source = src; rate; gen = (fun ~node:_ ~seq:_ -> Value.Int16_arr payload) } ]
  in
  let r = Testbed.run config ~graph ~node_of:(fun op -> op = src) ~sources in
  {
    offered_msgs_per_sec = rate;
    reception = r.msg_fraction;
    goodput_bytes_per_sec =
      Float.of_int (r.msgs_received * payload_bytes) /. duration;
  }

let sweep ?payload_bytes ?duration ?seed ~n_nodes ~link ~rates () =
  List.map (fun r -> measure ?payload_bytes ?duration ?seed ~n_nodes ~link r) rates

let max_send_rate ?payload_bytes ?(target = 0.9) ?duration ?seed ~n_nodes
    ~link () =
  let ok rate =
    let p = measure ?payload_bytes ?duration ?seed ~n_nodes ~link rate in
    (p, p.reception >= target)
  in
  (* exponential search for an upper bracket *)
  let rec bracket lo hi hi_point =
    let p, good = ok hi in
    if good && hi < 100_000. then bracket hi (hi *. 2.) (Some p)
    else (lo, hi, (if good then Some p else hi_point), p)
  in
  let lo0 = 0.5 in
  let p0, good0 = ok lo0 in
  if not good0 then p0
  else begin
    let lo, hi, best, _ = bracket lo0 (lo0 *. 2.) (Some p0) in
    let best = ref (Option.get best) in
    let lo = ref lo and hi = ref hi in
    for _ = 1 to 12 do
      let mid = (!lo +. !hi) /. 2. in
      let p, good = ok mid in
      if good then begin
        best := p;
        lo := mid
      end
      else hi := mid
    done;
    !best
  end
