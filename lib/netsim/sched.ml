type kind = Heap | Wheel

(* ---- growable flat bucket: parallel (time, seq, event) arrays ---- *)

type bucket = {
  mutable bt : float array;
  mutable bs : int array;
  mutable bv : int array;
  mutable blen : int;
}

let bucket () = { bt = [||]; bs = [||]; bv = [||]; blen = 0 }

let bucket_push b t s v =
  let cap = Array.length b.bt in
  if b.blen = cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let nt = Array.make ncap 0. in
    let ns = Array.make ncap 0 in
    let nv = Array.make ncap 0 in
    Array.blit b.bt 0 nt 0 cap;
    Array.blit b.bs 0 ns 0 cap;
    Array.blit b.bv 0 nv 0 cap;
    b.bt <- nt;
    b.bs <- ns;
    b.bv <- nv
  end;
  b.bt.(b.blen) <- t;
  b.bs.(b.blen) <- s;
  b.bv.(b.blen) <- v;
  b.blen <- b.blen + 1

(* ---- hierarchical timing wheel ---- *)

let bits = 8
let slots = 1 lsl bits
let mask = slots - 1

type wheel = {
  tick : float;
  lv0 : bucket array;  (* ticks in the current level-0 frame *)
  lv1 : bucket array;  (* level-0 frames in the current level-1 frame *)
  ovf : bucket;  (* everything beyond the current level-1 frame *)
  mutable cur : int;  (* next uncollected tick *)
  mutable n0 : int;
  mutable n1 : int;
  mutable seq : int;
  (* ready heap: events due now, ordered lexicographically by
     (time, seq) so equal timestamps drain FIFO *)
  mutable rt : float array;
  mutable rs : int array;
  mutable rv : int array;
  mutable rlen : int;
  mutable ct : float;  (* last popped key/payload *)
  mutable cv : int;
}

type t =
  | H of { q : int Heap.Pqueue.t; mutable ht : float; mutable hv : int }
  | W of wheel

let create ?(kind = Heap) ?(capacity = 1024) ?(tick = 1e-3) () =
  match kind with
  | Heap -> H { q = Heap.Pqueue.create ~capacity (); ht = 0.; hv = 0 }
  | Wheel ->
      if not (tick > 0.) then invalid_arg "Sched.create: tick must be > 0";
      let capacity = Int.max 16 capacity in
      W
        {
          tick;
          lv0 = Array.init slots (fun _ -> bucket ());
          lv1 = Array.init slots (fun _ -> bucket ());
          ovf = bucket ();
          cur = 0;
          n0 = 0;
          n1 = 0;
          seq = 0;
          rt = Array.make capacity 0.;
          rs = Array.make capacity 0;
          rv = Array.make capacity 0;
          rlen = 0;
          ct = 0.;
          cv = 0;
        }

let kind = function H _ -> Heap | W _ -> Wheel

let length = function
  | H h -> Heap.Pqueue.length h.q
  | W w -> w.rlen + w.n0 + w.n1 + w.ovf.blen

let is_empty t = length t = 0

(* ready-heap primitives (min-heap on (time, seq)) *)

let rless w i j =
  w.rt.(i) < w.rt.(j) || (w.rt.(i) = w.rt.(j) && w.rs.(i) < w.rs.(j))

let rswap w i j =
  let t = w.rt.(i) and s = w.rs.(i) and v = w.rv.(i) in
  w.rt.(i) <- w.rt.(j);
  w.rs.(i) <- w.rs.(j);
  w.rv.(i) <- w.rv.(j);
  w.rt.(j) <- t;
  w.rs.(j) <- s;
  w.rv.(j) <- v

let rec rsift_up w i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if rless w i p then begin
      rswap w i p;
      rsift_up w p
    end
  end

let rec rsift_down w i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < w.rlen && rless w l !m then m := l;
  if r < w.rlen && rless w r !m then m := r;
  if !m <> i then begin
    rswap w i !m;
    rsift_down w !m
  end

let ready_push w t s v =
  let cap = Array.length w.rt in
  if w.rlen = cap then begin
    let ncap = 2 * cap in
    let nt = Array.make ncap 0. in
    let ns = Array.make ncap 0 in
    let nv = Array.make ncap 0 in
    Array.blit w.rt 0 nt 0 cap;
    Array.blit w.rs 0 ns 0 cap;
    Array.blit w.rv 0 nv 0 cap;
    w.rt <- nt;
    w.rs <- ns;
    w.rv <- nv
  end;
  w.rt.(w.rlen) <- t;
  w.rs.(w.rlen) <- s;
  w.rv.(w.rlen) <- v;
  w.rlen <- w.rlen + 1;
  rsift_up w (w.rlen - 1)

let tick_of w t =
  let i = int_of_float (t /. w.tick) in
  if i < 0 then 0 else i

(* route one event to ready / level0 / level1 / overflow *)
let place w t s v =
  let tk = tick_of w t in
  if tk < w.cur then ready_push w t s v
  else if tk lsr bits = w.cur lsr bits then begin
    bucket_push w.lv0.(tk land mask) t s v;
    w.n0 <- w.n0 + 1
  end
  else if tk lsr (2 * bits) = w.cur lsr (2 * bits) then begin
    bucket_push w.lv1.((tk lsr bits) land mask) t s v;
    w.n1 <- w.n1 + 1
  end
  else bucket_push w.ovf t s v

let push t time ev =
  match t with
  | H h -> Heap.Pqueue.push h.q time ev
  | W w ->
      let s = w.seq in
      w.seq <- s + 1;
      place w time s ev

(* re-place overflow entries that now fall inside the current level-1
   frame; compacts the overflow bucket in place *)
let refill_from_overflow w =
  let f1 = w.cur lsr (2 * bits) in
  let b = w.ovf in
  let j = ref 0 in
  for i = 0 to b.blen - 1 do
    let t = b.bt.(i) and s = b.bs.(i) and v = b.bv.(i) in
    if tick_of w t lsr (2 * bits) <= f1 then place w t s v
    else begin
      b.bt.(!j) <- t;
      b.bs.(!j) <- s;
      b.bv.(!j) <- v;
      incr j
    end
  done;
  b.blen <- !j

(* pull the level-1 bucket for the level-0 frame that [w.cur] (a frame
   start) just entered, re-placing its entries into level 0 *)
let cascade w =
  let f0 = w.cur lsr bits in
  if f0 land mask = 0 && w.ovf.blen > 0 then refill_from_overflow w;
  let b = w.lv1.(f0 land mask) in
  if b.blen > 0 then begin
    w.n1 <- w.n1 - b.blen;
    let len = b.blen in
    b.blen <- 0;
    for i = 0 to len - 1 do
      place w b.bt.(i) b.bs.(i) b.bv.(i)
    done
  end

let rec advance w =
  if w.rlen > 0 then ()
  else if w.n0 > 0 then begin
    (* level 0 only holds current-frame ticks >= cur, so this scan
       always finds a nonempty slot *)
    let fbase = w.cur land lnot mask in
    let s = ref (w.cur land mask) in
    let found = ref false in
    while (not !found) && !s <= mask do
      let b = w.lv0.(!s) in
      if b.blen > 0 then begin
        for i = 0 to b.blen - 1 do
          ready_push w b.bt.(i) b.bs.(i) b.bv.(i)
        done;
        w.n0 <- w.n0 - b.blen;
        b.blen <- 0;
        w.cur <- (fbase lor !s) + 1;
        (* collecting the frame's last slot moves [cur] into the next
           frame: pull that frame's level-1 bucket now so the frame
           invariant holds for subsequent pushes and scans *)
        if w.cur land mask = 0 then cascade w;
        found := true
      end
      else incr s
    done;
    if not !found then begin
      w.cur <- fbase + slots;
      cascade w;
      advance w
    end
  end
  else if w.n1 > 0 then begin
    (* skip empty level-0 frames inside the current level-1 frame;
       level 1 only holds frames strictly ahead of the current one
       within this level-1 frame, so the scan finds one *)
    let f0 = w.cur lsr bits in
    let k = ref ((f0 land mask) + 1) in
    while !k <= mask && w.lv1.(!k).blen = 0 do
      incr k
    done;
    if !k > mask then begin
      (* defensive: should be unreachable; cross into the next level-1
         frame rather than spin *)
      w.cur <- ((f0 lsr bits) + 1) lsl (2 * bits);
      cascade w;
      advance w
    end
    else begin
      w.cur <- ((f0 land lnot mask) lor !k) lsl bits;
      cascade w;
      advance w
    end
  end
  else if w.ovf.blen > 0 then begin
    (* jump straight to the level-1 frame of the earliest overflow
       event; everything nearer is empty *)
    let m = ref max_int in
    for i = 0 to w.ovf.blen - 1 do
      let tk = tick_of w w.ovf.bt.(i) in
      if tk < !m then m := tk
    done;
    w.cur <- !m land lnot ((slots * slots) - 1);
    refill_from_overflow w;
    cascade w;
    advance w
  end

let pop t =
  match t with
  | H h -> (
      match Heap.Pqueue.pop h.q with
      | None -> false
      | Some (k, v) ->
          h.ht <- k;
          h.hv <- v;
          true)
  | W w ->
      if w.rlen = 0 then advance w;
      if w.rlen = 0 then false
      else begin
        w.ct <- w.rt.(0);
        w.cv <- w.rv.(0);
        w.rlen <- w.rlen - 1;
        if w.rlen > 0 then begin
          w.rt.(0) <- w.rt.(w.rlen);
          w.rs.(0) <- w.rs.(w.rlen);
          w.rv.(0) <- w.rv.(w.rlen);
          rsift_down w 0
        end;
        true
      end

let time = function H h -> h.ht | W w -> w.ct
let event = function H h -> h.hv | W w -> w.cv
