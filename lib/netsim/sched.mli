(** Event scheduler for the testbed's discrete-event loop.

    Two interchangeable kinds behind one monomorphic (int payload,
    float key) interface:

    - [Heap]: the historical float-keyed binary heap
      ({!Heap.Pqueue}).  This is the default; runs that predate the
      wheel scheduler reproduce bit-for-bit because the push/pop
      sequence — and therefore the heap's internal tie structure — is
      unchanged.
    - [Wheel]: a hierarchical timing wheel (two 256-slot levels over a
      fixed tick quantum plus an overflow bucket for far-future
      events).  Push and pop are O(1) amortized with zero steady-state
      allocation: buckets are preallocated growable int/float arrays,
      and events due in the current tick drain through a small
      in-place binary heap ordered by [(time, seq)], where [seq] is
      the push sequence number — so events at equal timestamps pop in
      FIFO order, giving the wheel a {e total} order independent of
      bucket geometry.

    Both kinds pop in nondecreasing key order.  Timestamp ties are
    measure-zero in the simulator (every event time includes a draw
    from a continuous distribution), so the two kinds produce
    identical event sequences in practice; the [sched-equivalence]
    fuzz oracle and the re-pinned goldens in [test_faults.ml] enforce
    this. *)

type kind = Heap | Wheel

type t

val create : ?kind:kind -> ?capacity:int -> ?tick:float -> unit -> t
(** [capacity] preallocates the underlying arrays (default 1024).
    [tick] is the wheel quantum in seconds (default [1e-3]; ignored by
    [Heap]); it affects performance only, never ordering.
    @raise Invalid_argument when [tick <= 0]. *)

val kind : t -> kind
val length : t -> int
val is_empty : t -> bool

val push : t -> float -> int -> unit
(** [push t time ev] schedules packed event [ev] at [time >= 0].
    Events may be pushed at or before the last popped time; they pop
    next, after earlier-pushed events with the same timestamp. *)

val pop : t -> bool
(** Advance to the next event.  Returns false when empty; on true the
    popped entry is readable via {!time} and {!event} until the next
    [pop].  Allocates nothing on the wheel path. *)

val time : t -> float
(** Key of the last popped event (0. before the first pop). *)

val event : t -> int
(** Payload of the last popped event (0 before the first pop). *)
