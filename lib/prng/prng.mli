(** Deterministic splittable pseudo-random numbers (SplitMix64).

    All stochastic parts of the reproduction (synthetic signals, radio
    loss, CSMA backoff) draw from explicitly seeded generators so that
    every experiment is bit-reproducible. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val derive : int -> int list -> int
(** The repo-wide seed-derivation scheme: [derive root path] maps a
    root seed and a path of stream indices to an independent stream
    seed.  Each path element folds into the state as one SplitMix64
    step ([mix (state * golden + index + 1)]), so [derive s [a; b]]
    and [derive s [a'; b']] are decorrelated whenever the paths
    differ, and the scheme nests: [derive s [a; b] = derive (derive s
    [a]) [b]] does {e not} hold in general — always derive from the
    root with the full path.  Conventions: the root seed itself seeds
    a component's {e primary} stream ([create root]); auxiliary
    streams use [create (derive root path)] with a documented path.
    Users: [Check.Fuzz] derives per-case seeds as
    [derive seed [oracle_index; case]]; [Netsim.Testbed] derives its
    fault streams as [derive seed [1; k]] (see [testbed.mli]). *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val int64 : t -> int64
val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> float -> float -> float
(** Uniform in [lo, hi). *)

val int : t -> int -> int
(** Uniform in [0, bound); [bound] must be positive. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val exponential : t -> float -> float
(** [exponential t rate] with mean [1/rate]. *)
