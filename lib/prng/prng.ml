type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let derive seed path =
  let step z i =
    mix (Int64.add (Int64.mul z golden) (Int64.of_int (i + 1)))
  in
  Int64.to_int (List.fold_left step (mix (Int64.of_int seed)) path)

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = int64 t }

let float t =
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int bound))

let bool t p = float t < p

let gaussian t =
  let u1 = Float.max 1e-300 (float t) in
  let u2 = float t in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let exponential t rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  -.Float.log (Float.max 1e-300 (1. -. float t)) /. rate
