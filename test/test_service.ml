(* Fleet placement service regression suite (DESIGN.md §16).

   Four groups:
   - a pinned 32-query mixed eeg14/eeg22/synthetic batch whose
     response digests must be identical for shard counts 1/2/4 and
     equal to the direct no-service solve path, with exact cache
     counters;
   - qcheck: cache-hit replay is byte-identical to the cold solve for
     the dense and sparse LP engines under both pricing rules, and an
     evicted entry re-solves to the first answer;
   - cache safety: the instance key covers every budget, so specs
     equal modulo CPU (or radio) budget never collide, and the query
     key separates rates and searches;
   - LRU churn: a seeded workload against a capacity-4 cache keeps
     the resident bound, conserves the counter algebra, and serves
     only direct-path answers throughout. *)

open Wishbone

let spec_exn ?mode ~platform raw =
  match Spec.of_profile ?mode ~node_platform:platform raw with
  | Ok s -> s
  | Error m -> failwith m

let q placement request = { Service.placement; request }
let rate pl r = q pl (Service.Rate r)
let search pl = q pl Service.Search

let digests responses =
  Array.map (fun (r : Service.response) -> r.Service.digest) responses

(* direct-path reference digests, memoised per cache key *)
let direct_digests svc queries =
  let memo = Hashtbl.create 16 in
  Array.map
    (fun qu ->
      let key = Service.query_key svc qu in
      match Hashtbl.find_opt memo key with
      | Some d -> d
      | None ->
          let d = Service.answer_digest (Service.solve_direct qu) in
          Hashtbl.add memo key d;
          d)
    queries

let synth seed = Placement.of_spec (Apps.Synthetic.random_spec ~seed ~n_ops:8 ())

(* ---- pinned mixed batch: shard determinism ------------------------ *)

(* short profiles: the batch exercises the service, not the profiler *)
let mixed_batch =
  lazy
    (let eeg14 =
       Placement.of_spec
         (spec_exn ~mode:Movable.Permissive
            ~platform:Profiler.Platform.tmote_sky
            (Apps.Eeg.profile ~duration:10. (Apps.Eeg.build ~n_channels:14 ())))
     in
     let eeg22 =
       Placement.of_spec
         (spec_exn ~mode:Movable.Permissive
            ~platform:Profiler.Platform.tmote_sky
            (Apps.Eeg.profile ~duration:10. (Apps.Eeg.build ())))
     in
     let s seed = Placement.of_spec (Apps.Synthetic.random_spec ~seed ~n_ops:12 ()) in
     Array.of_list
       ([ rate eeg14 0.4; rate eeg14 0.7; rate eeg14 1.0; rate eeg14 1.3;
          rate eeg14 0.7 ]
       @ [ rate eeg22 0.4; rate eeg22 0.7; rate eeg22 1.0; rate eeg22 1.3;
           rate eeg22 0.7 ]
       @ List.concat_map
           (fun seed -> [ rate (s seed) 0.8; rate (s seed) 1.2 ])
           [ 1; 2; 3; 4; 5 ]
       @ List.map (fun seed -> search (s seed)) [ 1; 2; 3; 4 ]
       @ [ rate (s 1) 0.8; rate (s 2) 1.2; search (s 1); search (s 2);
           rate (s 3) 0.8 ]
       @ [ rate eeg14 0.4; rate eeg22 1.0; rate (s 4) 1.2 ]))

let test_shard_determinism () =
  let queries = Lazy.force mixed_batch in
  Alcotest.(check int) "batch size" 32 (Array.length queries);
  let run shards =
    let svc = Service.create ~capacity:64 () in
    let responses = Service.run_batch ~shards svc queries in
    (digests responses, Service.counters svc, svc)
  in
  let d1, c1, svc1 = run 1 in
  let d2, c2, _ = run 2 in
  let d4, c4, _ = run 4 in
  Alcotest.(check (array string)) "shards=2 digests" d1 d2;
  Alcotest.(check (array string)) "shards=4 digests" d1 d4;
  (* counters are a pure function of the query history *)
  let pp c =
    Printf.sprintf "q%d h%d m%d w%d i%d e%d r%d" c.Service.queries
      c.Service.hits c.Service.misses c.Service.warm_starts c.Service.inserts
      c.Service.evictions c.Service.resident
  in
  Alcotest.(check string) "shards=2 counters" (pp c1) (pp c2);
  Alcotest.(check string) "shards=4 counters" (pp c1) (pp c4);
  (* 10 duplicate queries in the batch, nothing evicted at capacity 64 *)
  Alcotest.(check string) "exact counters" "q32 h10 m22 w0 i22 e0 r22" (pp c1);
  (* and the whole thing equals the no-service direct path *)
  Alcotest.(check (array string))
    "direct path" (direct_digests svc1 queries) d1

(* ---- qcheck: replay and eviction equivalences --------------------- *)

let engine_options =
  [
    ("dense/devex", Lp.Branch_bound.Dense, Lp.Simplex.Devex);
    ("dense/dantzig", Lp.Branch_bound.Dense, Lp.Simplex.Dantzig);
    ("sparse/devex", Lp.Branch_bound.Sparse_revised, Lp.Simplex.Devex);
    ("sparse/dantzig", Lp.Branch_bound.Sparse_revised, Lp.Simplex.Dantzig);
  ]

let options_for solver pricing =
  let o = Lp.Branch_bound.default_options in
  {
    o with
    Lp.Branch_bound.solver;
    simplex = { o.Lp.Branch_bound.simplex with Lp.Simplex.pricing };
  }

let prop_replay_equals_cold =
  QCheck.Test.make ~count:40 ~name:"cache-hit replay = cold solve"
    QCheck.(pair small_int (int_bound 3))
    (fun (seed, engine) ->
      let _, solver, pricing = List.nth engine_options engine in
      let options = options_for solver pricing in
      let pl = synth (1 + seed) in
      let queries = [| rate pl 0.9; rate pl 1.2; search pl; rate pl 0.9 |] in
      let svc = Service.create ~capacity:8 ~options () in
      let cold = digests (Service.run_batch svc queries) in
      let warm = digests (Service.run_batch svc queries) in
      let direct =
        Array.map
          (fun qu -> Service.answer_digest (Service.solve_direct ~options qu))
          queries
      in
      cold = warm && cold = direct)

let prop_evict_then_requery =
  QCheck.Test.make ~count:40 ~name:"eviction then requery = first solve"
    QCheck.small_int (fun seed ->
      let a = synth (1 + seed) and b = synth (1000 + seed) in
      (* capacity 1: b's insert evicts a, so the requery re-solves *)
      let svc = Service.create ~capacity:1 () in
      let first = (Service.run_batch svc [| rate a 0.9 |]).(0) in
      let _ = Service.run_batch svc [| rate b 0.9 |] in
      let again = (Service.run_batch svc [| rate a 0.9 |]).(0) in
      let c = Service.counters svc in
      first.Service.digest = again.Service.digest
      && again.Service.served <> Service.Hit
      && c.Service.hits = 0 && c.Service.misses = 3
      && c.Service.inserts = 3 && c.Service.evictions = 2
      && c.Service.resident = 1)

(* ---- cache safety: the key covers every budget -------------------- *)

let test_key_covers_budgets () =
  let spec = Apps.Synthetic.random_spec ~seed:5 ~n_ops:8 () in
  let pl = Placement.of_spec spec in
  let tighter_cpu =
    Placement.of_spec { spec with Spec.cpu_budget = spec.Spec.cpu_budget /. 2. }
  in
  let tighter_net =
    Placement.of_spec { spec with Spec.net_budget = spec.Spec.net_budget /. 2. }
  in
  Alcotest.(check bool) "cpu budget in key" false
    (Service.instance_key pl = Service.instance_key tighter_cpu);
  Alcotest.(check bool) "net budget in key" false
    (Service.instance_key pl = Service.instance_key tighter_net);
  let svc = Service.create () in
  Alcotest.(check bool) "rate in key" false
    (Service.query_key svc (rate pl 0.9) = Service.query_key svc (rate pl 1.1));
  Alcotest.(check bool) "search is its own key" false
    (Service.query_key svc (rate pl 0.9) = Service.query_key svc (search pl));
  (* and equal queries do collide, or the cache would never hit *)
  Alcotest.(check string) "identical queries share the key"
    (Service.query_key svc (rate pl 0.9))
    (Service.query_key svc (rate pl 0.9))

(* ---- LRU churn under a seeded workload ---------------------------- *)

let test_lru_churn () =
  let capacity = 4 in
  let svc = Service.create ~capacity () in
  let rng = Prng.create 99 in
  let instances = Array.init 8 (fun i -> synth (200 + i)) in
  let total = ref 0 in
  for _ = 1 to 12 do
    let n = 2 + Prng.int rng 4 in
    let batch =
      Array.init n (fun _ ->
          let pl = instances.(Prng.int rng 8) in
          if Prng.bool rng 0.2 then search pl
          else rate pl (0.8 +. (0.2 *. Float.of_int (Prng.int rng 3))))
    in
    total := !total + n;
    let responses = Service.run_batch ~shards:2 svc batch in
    Alcotest.(check (array string))
      "batch equals direct path" (direct_digests svc batch)
      (digests responses);
    let c = Service.counters svc in
    Alcotest.(check bool) "resident bound" true
      (c.Service.resident <= capacity);
    Alcotest.(check int) "hits + misses = queries" c.Service.queries
      (c.Service.hits + c.Service.misses);
    Alcotest.(check int) "inserts - evictions = resident" c.Service.resident
      (c.Service.inserts - c.Service.evictions)
  done;
  let c = Service.counters svc in
  Alcotest.(check int) "every query counted" !total c.Service.queries;
  Alcotest.(check bool) "churn evicted something" true
    (c.Service.evictions > 0)

let () =
  Alcotest.run "service"
    [
      ( "determinism",
        [
          Alcotest.test_case "32-query batch, shards 1/2/4" `Quick
            test_shard_determinism;
        ] );
      ( "replay",
        [
          QCheck_alcotest.to_alcotest prop_replay_equals_cold;
          QCheck_alcotest.to_alcotest prop_evict_then_requery;
        ] );
      ( "cache-safety",
        [
          Alcotest.test_case "keys cover budgets and requests" `Quick
            test_key_covers_budgets;
        ] );
      ( "lru",
        [ Alcotest.test_case "seeded churn" `Quick test_lru_churn ] );
    ]
