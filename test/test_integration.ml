(* End-to-end integration tests: the paper's qualitative results as
   regressions.  Each test runs the full chain
   build -> profile -> partition -> (deploy) and asserts the *shape*
   reported in the evaluation section (§7). *)

open Wishbone

let speech = Apps.Speech.build ()
let speech_raw = lazy (Apps.Speech.profile ~duration:20. speech)

let node_names (report : Partitioner.report) =
  List.map
    (fun i -> (Dataflow.Graph.op speech.Apps.Speech.graph i).Dataflow.Op.name)
    (Partitioner.node_ops report)

(* §7.3: binary search finds ~3 input events/s on the TMote, cutting
   right after the filter bank *)
let test_speech_tmote_rate_search () =
  let raw = Lazy.force speech_raw in
  match Spec.of_profile ~node_platform:Profiler.Platform.tmote_sky raw with
  | Error m -> Alcotest.fail m
  | Ok spec -> (
      (* the full 40 windows/s rate must NOT fit on a TMote *)
      (match Partitioner.solve spec with
      | Partitioner.No_feasible_partition -> ()
      | _ -> Alcotest.fail "full rate should not fit a TMote");
      match Rate_search.search spec with
      | Some { rate_multiplier; report } ->
          let wps = rate_multiplier *. Apps.Speech.frame_rate in
          Alcotest.(check bool)
            (Printf.sprintf "2..6 windows/s (got %.2f)" wps)
            true
            (wps > 2. && wps < 6.);
          Alcotest.(check (list string)) "cut after the filter bank"
            [ "source"; "preemph"; "hamming"; "prefilt"; "fft"; "filtbank" ]
            (node_names report)
      | None -> Alcotest.fail "rate search failed")

(* §7.3: the Meraki has 10x the bandwidth, so its optimum is cut
   point 1 - send the raw data *)
let test_speech_meraki_raw_cut () =
  let raw = Lazy.force speech_raw in
  match Spec.of_profile ~node_platform:Profiler.Platform.meraki raw with
  | Error m -> Alcotest.fail m
  | Ok spec -> (
      match Rate_search.search spec with
      | Some { rate_multiplier; report } ->
          Alcotest.(check bool) "sustains at least the full rate" true
            (rate_multiplier >= 1.);
          Alcotest.(check (list string)) "raw data off the node"
            [ "source" ] (node_names report)
      | None -> Alcotest.fail "rate search failed")

(* Figure 5(b): platform ordering of compute-bound sustainable rates *)
let test_fig5b_platform_ordering () =
  let raw = Lazy.force speech_raw in
  let full_pipeline_rate p =
    let cuts = Cutpoints.enumerate raw p in
    (List.nth cuts (List.length cuts - 1)).Cutpoints.max_rate_compute
  in
  let r = full_pipeline_rate in
  let open Profiler.Platform in
  Alcotest.(check bool) "tmote slowest" true
    (r tmote_sky < r nokia_n80);
  Alcotest.(check bool) "n80 only a few x the mote (jvm)" true
    (r nokia_n80 < 8. *. r tmote_sky);
  Alcotest.(check bool) "meraki ~15x mote" true
    (r meraki > 10. *. r tmote_sky && r meraki < 40. *. r tmote_sky);
  Alcotest.(check bool) "iphone ~3x slower than gumstix" true
    (r iphone < r gumstix /. 1.5 && r iphone > r gumstix /. 6.);
  Alcotest.(check bool) "voxnet and scheme fastest" true
    (r voxnet > r iphone && r scheme_server > r voxnet);
  Alcotest.(check bool) "mote cannot sustain the full rate" true
    (r tmote_sky < 0.1);
  Alcotest.(check bool) "server sustains hundreds of x" true
    (r scheme_server > 100.)

(* Figure 7: cumulative TMote CPU through the filter bank is a few
   hundred ms per frame; the cepstral stage dominates the total *)
let test_fig7_tmote_costs () =
  let raw = Lazy.force speech_raw in
  let cuts = Cutpoints.enumerate raw Profiler.Platform.tmote_sky in
  let by_label l = List.find (fun c -> c.Cutpoints.label = l) cuts in
  let filtbank_ms = (by_label "filtbank").Cutpoints.node_us_per_input /. 1000. in
  let total_ms = (by_label "cepstrals").Cutpoints.node_us_per_input /. 1000. in
  Alcotest.(check bool)
    (Printf.sprintf "filtbank cumulative 150..450 ms (got %.0f)" filtbank_ms)
    true
    (filtbank_ms > 150. && filtbank_ms < 450.);
  Alcotest.(check bool)
    (Printf.sprintf "total 1..3 s (got %.0f ms)" total_ms)
    true
    (total_ms > 1000. && total_ms < 3000.);
  Alcotest.(check bool) "cepstrals dominate" true
    (total_ms -. (by_label "logs").Cutpoints.node_us_per_input /. 1000.
    > 0.6 *. total_ms)

(* Figure 8: the float-heavy cepstral stage is a far larger share of
   total CPU on the mote than on the server *)
let test_fig8_relative_costs () =
  let raw = Lazy.force speech_raw in
  let order = Cutpoints.pipeline_order raw in
  let share p =
    let cum = Profiler.Report.normalized_cumulative_cpu raw p ~order in
    (* share of the last two compute stages (logs+cepstrals) *)
    1. -. cum.(Array.length cum - 4)
  in
  let mote = share Profiler.Platform.tmote_sky in
  let server = share Profiler.Platform.xeon_server in
  Alcotest.(check bool)
    (Printf.sprintf "mote %.2f vs server %.2f" mote server)
    true
    (mote > 1.35 *. server)

(* Figures 9/10: deployment goodput across cut points *)
let deploy_goodput ~n_nodes cut =
  let assignment = Apps.Speech.cut_assignment speech cut in
  let config =
    Netsim.Testbed.default_config ~n_nodes ~duration:60. ~seed:5
      ~platform:Profiler.Platform.tmote_sky ~link:Netsim.Link.cc2420 ()
  in
  let sources = Apps.Speech.testbed_sources ~rate_mult:1.0 speech in
  let r =
    Netsim.Testbed.run config ~graph:speech.Apps.Speech.graph
      ~node_of:(fun i -> assignment.(i))
      ~sources
  in
  r.goodput_fraction

let test_fig9_single_mote_peak () =
  let cuts = Apps.Speech.relevant_cutpoints speech in
  let goodputs = List.map (fun c -> (c, deploy_goodput ~n_nodes:1 c)) cuts in
  let best, best_g =
    List.fold_left
      (fun (bc, bg) (c, g) -> if g > bg then (c, g) else (bc, bg))
      (-1, -1.) goodputs
  in
  (* paper: peak at the 4th relevant cut point = after the filter bank *)
  Alcotest.(check int) "single-mote peak after filtbank" 6 best;
  (* early cut points drive reception to zero *)
  let g1 = List.assoc 1 goodputs in
  Alcotest.(check bool) "raw-data cut collapses" true (g1 < 0.005);
  (* picking the best working partition beats the worst working one by
     a large factor (paper: 20x) *)
  let worst_working =
    List.fold_left
      (fun acc (_, g) -> if g > 0.001 then Float.min acc g else acc)
      infinity goodputs
  in
  Alcotest.(check bool)
    (Printf.sprintf "best %.3f >> worst %.4f" best_g worst_working)
    true
    (best_g > 3. *. worst_working)

let test_fig10_network_peak () =
  let cuts = Apps.Speech.relevant_cutpoints speech in
  let goodputs = List.map (fun c -> (c, deploy_goodput ~n_nodes:20 c)) cuts in
  let best, _ =
    List.fold_left
      (fun (bc, bg) (c, g) -> if g > bg then (c, g) else (bc, bg))
      (-1, -1.) goodputs
  in
  (* paper: the 20-node network peaks at the final cut (cepstral):
     compute-bound, so the aggregate CPU wins *)
  Alcotest.(check int) "20-node peak at the final cut" 8 best

(* model vs deployment: the predicted optimal cut matches the
   empirically best cut on the simulated testbed (the §7.3 claim) *)
let test_predicted_matches_empirical () =
  let raw = Lazy.force speech_raw in
  match Spec.of_profile ~node_platform:Profiler.Platform.tmote_sky raw with
  | Error m -> Alcotest.fail m
  | Ok spec -> (
      match Rate_search.search spec with
      | None -> Alcotest.fail "no partition"
      | Some { report; _ } ->
          let predicted_cut = List.length (Partitioner.node_ops report) in
          let cuts = Apps.Speech.relevant_cutpoints speech in
          let best, _ =
            List.fold_left
              (fun (bc, bg) c ->
                let g = deploy_goodput ~n_nodes:1 c in
                if g > bg then (c, g) else (bc, bg))
              (-1, -1.) cuts
          in
          Alcotest.(check int) "ILP cut = empirical best cut" best
            predicted_cut)

(* §7.3.1: the additive cost model underestimates the measured CPU
   (OS overhead + processor cost of communication) *)
let test_predicted_vs_measured_cpu () =
  let raw = Lazy.force speech_raw in
  match
    Spec.of_profile ~node_platform:Profiler.Platform.gumstix raw
  with
  | Error m -> Alcotest.fail m
  | Ok spec ->
      let assignment = Apps.Speech.cut_assignment speech 8 in
      let config =
        Netsim.Testbed.default_config ~n_nodes:1 ~duration:30. ~seed:4
          ~platform:Profiler.Platform.gumstix ~link:Netsim.Link.wifi ()
      in
      let sources = Apps.Speech.testbed_sources ~rate_mult:1.0 speech in
      let c = Deploy.run ~config ~sources ~spec ~assignment in
      Alcotest.(check bool)
        (Printf.sprintf "measured %.4f > predicted %.4f" c.measured_cpu
           c.predicted_cpu)
        true
        (c.measured_cpu > c.predicted_cpu);
      Alcotest.(check bool) "but within 2x" true
        (c.measured_cpu < 2. *. c.predicted_cpu)

(* ---- EEG ---- *)

let test_fig5a_rate_sweep_shape () =
  (* one channel: the number of operators in the optimal node
     partition falls monotonically (in steps) as the rate grows, and
     the N80 fits at least as many as the TMote *)
  let t = Apps.Eeg.single_channel () in
  let raw = Apps.Eeg.profile ~duration:120. t in
  let ops_on_node platform mult =
    match Spec.of_profile ~mode:Movable.Permissive ~node_platform:platform raw with
    | Error m -> Alcotest.fail m
    | Ok spec -> (
        match Partitioner.solve (Spec.scale_rate spec mult) with
        | Partitioner.Partitioned r -> List.length (Partitioner.node_ops r)
        | Partitioner.No_feasible_partition -> -1
        | Partitioner.Solver_failure m -> Alcotest.fail m)
  in
  let rates = [ 1.; 4.; 16.; 64.; 256. ] in
  let tmote = List.map (ops_on_node Profiler.Platform.tmote_sky) rates in
  let n80 = List.map (ops_on_node Profiler.Platform.nokia_n80) rates in
  (* at the native 256 Hz rate everything fits on either platform *)
  Alcotest.(check bool) "all ops fit at x1 (tmote)" true
    (List.hd tmote >= 50);
  (* monotone non-increasing in rate *)
  let check_monotone name l =
    List.iteri
      (fun i v ->
        if i > 0 && v > List.nth l (i - 1) then
          Alcotest.failf "%s: node ops grew with rate" name)
      l
  in
  check_monotone "tmote" tmote;
  check_monotone "n80" n80;
  (* the N80 sustains at least as much as the TMote at every rate *)
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "n80 >= tmote" true (b >= a))
    tmote n80;
  (* and at some high rate the TMote holds fewer operators *)
  Alcotest.(check bool) "tmote eventually sheds work" true
    (List.nth tmote 4 < List.hd tmote)

let test_eeg_full_app_partitions () =
  let t = Apps.Eeg.build () in
  let raw = Apps.Eeg.profile ~duration:60. t in
  match Spec.of_profile ~mode:Movable.Permissive
          ~node_platform:Profiler.Platform.tmote_sky raw with
  | Error m -> Alcotest.fail m
  | Ok spec -> (
      let c = Preprocess.contract spec in
      let orig, super = Preprocess.reduction c in
      Alcotest.(check bool)
        (Printf.sprintf "preprocessing shrinks %d -> %d movable" orig super)
        true
        (super < orig * 7 / 10);
      match Partitioner.solve spec with
      | Partitioner.Partitioned r ->
          Alcotest.(check bool) "proved optimal" true
            r.solver.Lp.Branch_bound.proved_optimal;
          Alcotest.(check bool)
            (Printf.sprintf "solved in %.1f s"
               r.solver.Lp.Branch_bound.time_total)
            true
            (r.solver.Lp.Branch_bound.time_total < 120.);
          (* the sources must stay on the node, the sink on the server *)
          Array.iter
            (fun s ->
              Alcotest.(check bool) "source on node" true r.assignment.(s))
            t.Apps.Eeg.sources
      | Partitioner.No_feasible_partition ->
          (* acceptable at full 22-channel load on a mote: then a rate
             search must succeed below x1 (coarse tolerance and a small
             per-solve budget keep the test fast) *)
          (match
             Rate_search.search ~tol:0.1
               ~options:
                 {
                   Rate_search.default_search_options with
                   Lp.Branch_bound.time_limit = 2.;
                 }
               spec
           with
          | Some { rate_multiplier; _ } ->
              Alcotest.(check bool) "reduced rate found" true
                (rate_multiplier > 0.)
          | None -> Alcotest.fail "EEG has no feasible rate at all")
      | Partitioner.Solver_failure m -> Alcotest.fail m)

let test_eeg_conservative_vs_permissive () =
  (* ablation: permissive mode must expose strictly more movable
     operators (the EEG cascade is stateful) *)
  let t = Apps.Eeg.single_channel () in
  let g = t.Apps.Eeg.graph in
  match
    ( Movable.classify Movable.Conservative g,
      Movable.classify Movable.Permissive g )
  with
  | Ok cons, Ok perm ->
      Alcotest.(check bool) "permissive strictly more movable" true
        (Movable.movable_count perm > Movable.movable_count cons)
  | _ -> Alcotest.fail "classification failed"

let () =
  (* the pivot counter is process-wide; start every suite from a
     clean slate so no test depends on which suite ran before it
     (asserted centrally in test_check.ml) *)
  Lp.Simplex.reset_cumulative_pivots ();
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "integration"
    [
      ( "speech",
        [
          tc "tmote rate search (3 events/s, filtbank cut)"
            test_speech_tmote_rate_search;
          tc "meraki sends raw data" test_speech_meraki_raw_cut;
          tc "fig5b platform ordering" test_fig5b_platform_ordering;
          tc "fig7 tmote costs" test_fig7_tmote_costs;
          tc "fig8 relative costs" test_fig8_relative_costs;
        ] );
      ( "deployment",
        [
          tc "fig9 single-mote peak at filtbank" test_fig9_single_mote_peak;
          tc "fig10 20-node peak at cepstral" test_fig10_network_peak;
          tc "model matches empirical best cut"
            test_predicted_matches_empirical;
          tc "additive model underestimates CPU"
            test_predicted_vs_measured_cpu;
        ] );
      ( "eeg",
        [
          tc "fig5a rate sweep shape" test_fig5a_rate_sweep_shape;
          tc "full 1126-op app partitions" test_eeg_full_app_partitions;
          tc "conservative vs permissive" test_eeg_conservative_vs_permissive;
        ] );
    ]
