(* LP / ILP solver tests: hand-checked instances plus randomized
   comparison against exhaustive oracles. *)

open Lp

let check_close ?(tol = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.9g, got %.9g" msg expected actual

let solve_lp p =
  match Simplex.solve p with
  | Solution.Optimal s -> s
  | st -> Alcotest.failf "expected optimal, got %a" Solution.pp_status st

(* ---- basic LPs ---- *)

let test_lp_basic () =
  (* max 3x + 2y st x+y<=4, x+3y<=6 -> (4,0), obj 12 *)
  let p = Problem.create () in
  let x = Problem.add_var p and y = Problem.add_var p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Le 4.;
  Problem.add_constr p [ (x, 1.); (y, 3.) ] Problem.Le 6.;
  Problem.set_objective p Problem.Maximize [ (x, 3.); (y, 2.) ];
  let s = solve_lp p in
  check_close "objective" 12. s.objective;
  check_close "x" 4. s.x.(x);
  check_close "y" 0. s.x.(y)

let test_lp_degenerate () =
  (* multiple optimal bases; classic degeneracy *)
  let p = Problem.create () in
  let x = Problem.add_var p and y = Problem.add_var p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Le 1.;
  Problem.add_constr p [ (x, 1.) ] Problem.Le 1.;
  Problem.add_constr p [ (x, 2.); (y, 2.) ] Problem.Le 2.;
  Problem.set_objective p Problem.Maximize [ (x, 1.); (y, 1.) ];
  let s = solve_lp p in
  check_close "objective" 1. s.objective

let test_lp_equality () =
  (* min x + y st x + 2y = 3, x,y >= 0 -> y=1.5, obj 1.5 *)
  let p = Problem.create () in
  let x = Problem.add_var p and y = Problem.add_var p in
  Problem.add_constr p [ (x, 1.); (y, 2.) ] Problem.Eq 3.;
  Problem.set_objective p Problem.Minimize [ (x, 1.); (y, 1.) ];
  let s = solve_lp p in
  check_close "objective" 1.5 s.objective

let test_lp_negative_rhs () =
  (* constraints with negative rhs exercise the row-flip path *)
  let p = Problem.create () in
  let x = Problem.add_var ~lo:(-10.) ~hi:10. p in
  Problem.add_constr p [ (x, -1.) ] Problem.Le 5.;  (* x >= -5 *)
  Problem.set_objective p Problem.Minimize [ (x, 1.) ];
  let s = solve_lp p in
  check_close "x" (-5.) s.x.(x)

let test_lp_upper_bounds () =
  (* optimum at a variable's upper bound (bound-flip machinery) *)
  let p = Problem.create () in
  let x = Problem.add_var ~hi:3. p and y = Problem.add_var ~hi:2. p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Le 10.;
  Problem.set_objective p Problem.Maximize [ (x, 1.); (y, 5.) ];
  let s = solve_lp p in
  check_close "objective" 13. s.objective;
  check_close "x" 3. s.x.(x);
  check_close "y" 2. s.x.(y)

let test_lp_free_negative_lo () =
  let p = Problem.create () in
  let x = Problem.add_var ~lo:(-4.) ~hi:(-1.) p in
  Problem.set_objective p Problem.Maximize [ (x, 1.) ];
  let s = solve_lp p in
  check_close "x" (-1.) s.x.(x)

let test_lp_infeasible () =
  let p = Problem.create () in
  let x = Problem.add_var ~hi:1. p in
  Problem.add_constr p [ (x, 1.) ] Problem.Ge 2.;
  match Simplex.solve p with
  | Solution.Infeasible -> ()
  | st -> Alcotest.failf "expected infeasible, got %a" Solution.pp_status st

let test_lp_unbounded () =
  let p = Problem.create () in
  let x = Problem.add_var p in
  Problem.set_objective p Problem.Maximize [ (x, 1.) ];
  match Simplex.solve p with
  | Solution.Unbounded -> ()
  | st -> Alcotest.failf "expected unbounded, got %a" Solution.pp_status st

let test_lp_no_constraints () =
  (* optimum determined purely by bounds *)
  let p = Problem.create () in
  let x = Problem.add_var ~lo:2. ~hi:7. p in
  Problem.set_objective p Problem.Minimize [ (x, 3.) ];
  let s = solve_lp p in
  check_close "objective" 6. s.objective

let test_lp_fixed_var () =
  let p = Problem.create () in
  let x = Problem.add_var ~lo:2. ~hi:2. p in
  let y = Problem.add_var ~hi:5. p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Le 6.;
  Problem.set_objective p Problem.Maximize [ (y, 1.) ];
  let s = solve_lp p in
  check_close "y" 4. s.x.(y)

let test_lp_duplicate_terms () =
  (* duplicate variable indices in a constraint must be summed *)
  let p = Problem.create () in
  let x = Problem.add_var p in
  Problem.add_constr p [ (x, 1.); (x, 1.) ] Problem.Le 4.;  (* 2x <= 4 *)
  Problem.set_objective p Problem.Maximize [ (x, 1.) ];
  let s = solve_lp p in
  check_close "x" 2. s.x.(x)

let test_lp_bound_override () =
  let p = Problem.create () in
  let x = Problem.add_var ~hi:10. p in
  Problem.set_objective p Problem.Maximize [ (x, 1.) ];
  let s =
    match Simplex.solve ~lo:[| 0. |] ~hi:[| 3. |] p with
    | Solution.Optimal s -> s
    | st -> Alcotest.failf "expected optimal, got %a" Solution.pp_status st
  in
  check_close "x" 3. s.x.(0);
  (* the original problem is untouched *)
  let s2 = solve_lp p in
  check_close "x orig" 10. s2.x.(0)

let test_lp_conflicting_override () =
  let p = Problem.create () in
  let _ = Problem.add_var ~hi:10. p in
  match Simplex.solve ~lo:[| 5. |] ~hi:[| 3. |] p with
  | Solution.Infeasible -> ()
  | st -> Alcotest.failf "expected infeasible, got %a" Solution.pp_status st

let test_lp_mixed_scale () =
  (* a vacuous huge budget next to a tight small one: the regression
     that once let infeasible branch-and-bound children pass *)
  let p = Problem.create () in
  let x = Problem.add_var ~hi:1. p and y = Problem.add_var ~hi:1. p in
  Problem.add_constr p [ (x, 2.); (y, 2.) ] Problem.Le 2.;
  Problem.add_constr p [ (x, 8.); (y, 4.) ] Problem.Le 1e9;
  Problem.set_objective p Problem.Maximize [ (x, 1.); (y, 1.) ];
  let s = solve_lp p in
  check_close "objective" 1. s.objective;
  match Simplex.solve ~lo:[| 1.; 1. |] ~hi:[| 1.; 1. |] p with
  | Solution.Infeasible -> ()
  | st -> Alcotest.failf "expected infeasible, got %a" Solution.pp_status st

(* ---- ILP ---- *)

let solve_ilp p =
  match Branch_bound.solve p with
  | Solution.Optimal s, stats -> (s, stats)
  | st, _ -> Alcotest.failf "expected optimal, got %a" Solution.pp_status st

let test_ilp_knapsack () =
  let p = Problem.create () in
  let a = Problem.add_var ~hi:1. ~integer:true p in
  let b = Problem.add_var ~hi:1. ~integer:true p in
  let c = Problem.add_var ~hi:1. ~integer:true p in
  Problem.add_constr p [ (a, 5.); (b, 4.); (c, 3.) ] Problem.Le 8.;
  Problem.set_objective p Problem.Maximize [ (a, 10.); (b, 6.); (c, 4.) ];
  let s, stats = solve_ilp p in
  check_close "objective" 14. s.objective;
  Alcotest.(check bool) "proved" true stats.proved_optimal

let test_ilp_integrality_matters () =
  (* LP relaxation is 2.5; integer optimum is 2 *)
  let p = Problem.create () in
  let x = Problem.add_var ~hi:10. ~integer:true p in
  Problem.add_constr p [ (x, 2.) ] Problem.Le 5.;
  Problem.set_objective p Problem.Maximize [ (x, 1.) ];
  let s, _ = solve_ilp p in
  check_close "x" 2. s.x.(x)

let test_ilp_infeasible () =
  let p = Problem.create () in
  let x = Problem.add_var ~hi:1. ~integer:true p in
  let y = Problem.add_var ~hi:1. ~integer:true p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Ge 3.;
  match Branch_bound.solve p with
  | Solution.Infeasible, _ -> ()
  | st, _ -> Alcotest.failf "expected infeasible, got %a" Solution.pp_status st

let test_ilp_gap_between_lp_and_ip () =
  (* equality forcing x + 2y = 3 with binaries: only (1,1) works *)
  let p = Problem.create () in
  let x = Problem.add_var ~hi:1. ~integer:true p in
  let y = Problem.add_var ~hi:1. ~integer:true p in
  Problem.add_constr p [ (x, 1.); (y, 2.) ] Problem.Eq 3.;
  Problem.set_objective p Problem.Minimize [ (x, 1.); (y, 1.) ];
  let s, _ = solve_ilp p in
  check_close "x" 1. s.x.(x);
  check_close "y" 1. s.x.(y)

let test_ilp_mixed_integer () =
  (* one integer, one continuous *)
  let p = Problem.create () in
  let x = Problem.add_var ~hi:10. ~integer:true p in
  let y = Problem.add_var ~hi:10. p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Le 4.5;
  Problem.set_objective p Problem.Maximize [ (x, 2.); (y, 1.) ];
  let s, _ = solve_ilp p in
  check_close "objective" 8.5 s.objective;
  check_close "x" 4. s.x.(x)

let test_ilp_incumbent_trace () =
  let p = Problem.create () in
  let vars = Array.init 8 (fun _ -> Problem.add_var ~hi:1. ~integer:true p) in
  Problem.add_constr p
    (Array.to_list (Array.map (fun v -> (v, 1.)) vars))
    Problem.Le 4.;
  Problem.set_objective p Problem.Maximize
    (Array.to_list (Array.mapi (fun i v -> (v, Float.of_int (i + 1))) vars));
  let s, stats = solve_ilp p in
  check_close "objective" 26. s.objective;
  Alcotest.(check bool) "trace nonempty" true (stats.incumbent_trace <> []);
  Alcotest.(check bool)
    "incumbent time <= total" true
    (stats.time_to_incumbent <= stats.time_total +. 1e-9)

(* ---- warm starts ---- *)

let test_warm_bound_change () =
  (* max 2x + 3y st x + 2y <= 6, x <= 4, y <= 3 -> (4, 1), obj 11;
     then tighten x <= 2 and re-solve from the optimal basis *)
  let p = Problem.create () in
  let x = Problem.add_var ~hi:4. p and y = Problem.add_var ~hi:3. p in
  Problem.add_constr p [ (x, 1.); (y, 2.) ] Problem.Le 6.;
  Problem.set_objective p Problem.Maximize [ (x, 2.); (y, 3.) ];
  let r = Simplex.solve_warm p in
  check_close "cold objective" 11. (Solution.get r.Simplex.status).objective;
  let basis =
    match r.Simplex.basis with
    | Some b -> b
    | None -> Alcotest.fail "optimal solve returned no basis"
  in
  let lo = [| 0.; 0. |] and hi = [| 2.; 3. |] in
  let w = Simplex.solve_warm ~warm:basis ~lo ~hi p in
  Alcotest.(check bool) "warm basis accepted" true w.Simplex.warm_used;
  (* x <= 2 -> (2, 2), obj 10 *)
  check_close "warm objective" 10. (Solution.get w.Simplex.status).objective;
  let c = Simplex.solve_warm ~lo ~hi p in
  check_close "warm = cold"
    (Solution.get c.Simplex.status).objective
    (Solution.get w.Simplex.status).objective

let test_hot_tableau_replay () =
  (* same model as the bound-change test, but re-solving by replaying
     the retained final tableau instead of refactorising the basis *)
  let p = Problem.create () in
  let x = Problem.add_var ~hi:4. p and y = Problem.add_var ~hi:3. p in
  Problem.add_constr p [ (x, 1.); (y, 2.) ] Problem.Le 6.;
  Problem.set_objective p Problem.Maximize [ (x, 2.); (y, 3.) ];
  let r = Simplex.solve_warm ~keep_hot:true p in
  check_close "cold objective" 11. (Solution.get r.Simplex.status).objective;
  let hot =
    match r.Simplex.hot with
    | Some h -> h
    | None -> Alcotest.fail "keep_hot solve returned no hot tableau"
  in
  let lo = [| 0.; 0. |] and hi = [| 2.; 3. |] in
  let h = Simplex.solve_warm ~hot ~lo ~hi p in
  Alcotest.(check bool) "hot tableau accepted" true h.Simplex.hot_used;
  check_close "hot objective" 10. (Solution.get h.Simplex.status).objective;
  (* a hot value can be replayed more than once: loosen back *)
  let h2 = Simplex.solve_warm ~hot p in
  Alcotest.(check bool) "hot replayed twice" true h2.Simplex.hot_used;
  check_close "replay objective" 11.
    (Solution.get h2.Simplex.status).objective;
  (* without keep_hot, no tableau is retained *)
  Alcotest.(check bool) "no hot unless requested" true (h.Simplex.hot = None)

let test_warm_detects_infeasible () =
  let p = Problem.create () in
  let x = Problem.add_var ~hi:1. p and y = Problem.add_var ~hi:1. p in
  Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Ge 1.5;
  Problem.set_objective p Problem.Minimize [ (x, 1.); (y, 1.) ];
  let r = Simplex.solve_warm p in
  let basis = Option.get r.Simplex.basis in
  (* x, y <= 0.5 makes the covering constraint unsatisfiable *)
  let w = Simplex.solve_warm ~warm:basis ~lo:[| 0.; 0. |] ~hi:[| 0.5; 0.5 |] p in
  match w.Simplex.status with
  | Solution.Infeasible -> ()
  | st -> Alcotest.failf "expected infeasible, got %a" Solution.pp_status st

let test_warm_rescaled_coefficients () =
  (* rate-search shape: same structure, uniformly scaled data *)
  let build scale =
    let p = Problem.create () in
    let x = Problem.add_var ~hi:1. ~integer:true p in
    let y = Problem.add_var ~hi:1. ~integer:true p in
    let z = Problem.add_var ~hi:1. ~integer:true p in
    Problem.add_constr p
      [ (x, 5. *. scale); (y, 4. *. scale); (z, 3. *. scale) ]
      Problem.Le 8.;
    Problem.set_objective p Problem.Maximize [ (x, 10.); (y, 6.); (z, 4.) ];
    p
  in
  let r = Simplex.solve_warm (build 1.) in
  let basis = Option.get r.Simplex.basis in
  let p2 = build 1.7 in
  let w = Simplex.solve_warm ~warm:basis p2 in
  let c = Simplex.solve_warm p2 in
  check_close "rescaled warm = cold"
    (Solution.get c.Simplex.status).objective
    (Solution.get w.Simplex.status).objective

let test_fractional_var_most_fractional () =
  let fv = Branch_bound.fractional_var ~int_tol:1e-6 in
  (* 2.45 is closest to .5 away from an integer: distances .1, .45, .1 *)
  (match fv [ 0; 1; 2 ] [| 0.1; 2.45; 3.9 |] with
  | Some 1 -> ()
  | Some v -> Alcotest.failf "expected var 1 (most fractional), got %d" v
  | None -> Alcotest.fail "expected a fractional var");
  (* ties break towards the lowest index: .3 vs .3 *)
  (match fv [ 0; 1 ] [| 1.3; 2.7 |] with
  | Some 0 -> ()
  | Some v -> Alcotest.failf "tie should pick var 0, got %d" v
  | None -> Alcotest.fail "expected a fractional var");
  (* integral vectors have no branching candidate *)
  match fv [ 0; 1 ] [| 1.0; 2.0 |] with
  | None -> ()
  | Some v -> Alcotest.failf "integral point, but picked %d" v

let test_bb_warm_matches_cold_knapsack () =
  let p = Problem.create () in
  let vars = Array.init 10 (fun _ -> Problem.add_var ~hi:1. ~integer:true p) in
  Problem.add_constr p
    (Array.to_list (Array.mapi (fun i v -> (v, Float.of_int (i + 3))) vars))
    Problem.Le 20.;
  Problem.set_objective p Problem.Maximize
    (Array.to_list
       (Array.mapi (fun i v -> (v, Float.of_int ((i * 7 mod 11) + 1))) vars));
  let warm, warm_stats = solve_ilp p in
  let cold_opts =
    { Branch_bound.default_options with Branch_bound.warm_start = false }
  in
  let cold, cold_stats =
    match Branch_bound.solve ~options:cold_opts p with
    | Solution.Optimal s, stats -> (s, stats)
    | st, _ -> Alcotest.failf "expected optimal, got %a" Solution.pp_status st
  in
  check_close "warm = cold objective" cold.objective warm.objective;
  Alcotest.(check bool)
    "warm spends no more pivots" true
    (warm_stats.total_pivots <= cold_stats.total_pivots)

(* ---- randomized: B&B vs brute force ---- *)

let random_problem seed =
  let rng = Prng.create seed in
  let p = Problem.create () in
  let n = 3 + Prng.int rng 6 in
  let vars =
    Array.init n (fun _ ->
        Problem.add_var ~hi:(Float.of_int (1 + Prng.int rng 3)) ~integer:true p)
  in
  let m = 1 + Prng.int rng 4 in
  for _ = 1 to m do
    let terms =
      Array.to_list
        (Array.map (fun v -> (v, Float.of_int (Prng.int rng 7 - 3))) vars)
    in
    let sense = if Prng.bool rng 0.8 then Problem.Le else Problem.Ge in
    let rhs = Float.of_int (Prng.int rng 10 - 2) in
    Problem.add_constr p terms sense rhs
  done;
  let dir = if Prng.bool rng 0.5 then Problem.Maximize else Problem.Minimize in
  Problem.set_objective p dir
    (Array.to_list
       (Array.map (fun v -> (v, Float.of_int (Prng.int rng 11 - 5))) vars));
  p

let prop_bb_matches_brute =
  QCheck.Test.make ~count:300 ~name:"branch&bound matches brute force"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = random_problem seed in
      let bb, _ = Branch_bound.solve p in
      let brute = Brute.solve p in
      match (bb, brute) with
      | Solution.Optimal a, Solution.Optimal b ->
          if Float.abs (a.objective -. b.objective) > 1e-5 then
            QCheck.Test.fail_reportf "seed %d: bb=%.9g brute=%.9g" seed
              a.objective b.objective
          else if Problem.constraint_violation p a.x > 1e-5 then
            QCheck.Test.fail_reportf "seed %d: bb solution infeasible" seed
          else true
      | Solution.Infeasible, Solution.Infeasible -> true
      | Solution.Unbounded, Solution.Unbounded -> true
      | a, b ->
          QCheck.Test.fail_reportf "seed %d: bb=%a brute=%a" seed
            Solution.pp_status a Solution.pp_status b)

let random_lp seed =
  let rng = Prng.create seed in
  let p = Problem.create () in
  let n = 2 + Prng.int rng 5 in
  let vars =
    Array.init n (fun _ -> Problem.add_var ~hi:(Prng.uniform rng 1. 10.) p)
  in
  for _ = 1 to 1 + Prng.int rng 4 do
    let terms =
      Array.to_list (Array.map (fun v -> (v, Prng.uniform rng (-3.) 3.)) vars)
    in
    Problem.add_constr p terms Problem.Le (Prng.uniform rng 0. 10.)
  done;
  Problem.set_objective p Problem.Maximize
    (Array.to_list (Array.map (fun v -> (v, Prng.uniform rng (-2.) 5.)) vars));
  p

let prop_lp_feasible_optimal =
  QCheck.Test.make ~count:300 ~name:"simplex returns feasible points"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = random_lp seed in
      match Simplex.solve p with
      | Solution.Optimal s ->
          if Problem.constraint_violation p s.x > 1e-5 then
            QCheck.Test.fail_reportf "seed %d: violation %g" seed
              (Problem.constraint_violation p s.x)
          else Float.abs (Problem.objective_value p s.x -. s.objective) < 1e-5
      | Solution.Infeasible -> true
      | Solution.Unbounded | Solution.Iteration_limit -> true)

let prop_lp_relaxation_bounds_ilp =
  QCheck.Test.make ~count:200 ~name:"LP relaxation bounds the ILP optimum"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = random_problem seed in
      match (Simplex.solve p, Branch_bound.solve p) with
      | Solution.Optimal lp, (Solution.Optimal ip, _) -> (
          match Problem.direction p with
          | Problem.Maximize -> lp.objective >= ip.objective -. 1e-5
          | Problem.Minimize -> lp.objective <= ip.objective +. 1e-5)
      | _ -> true)

(* ---- randomized: warm-started vs cold solves ---- *)

let prop_warm_lp_matches_cold =
  QCheck.Test.make ~count:300 ~name:"warm-started LP matches cold solve"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let p = random_lp seed in
      match Simplex.solve_warm ~keep_hot:true p with
      | { Simplex.status = Solution.Optimal _; basis = Some b; hot; _ } -> (
          (* tighten a few bounds, as branch & bound would *)
          let rng = Prng.create (seed + 77) in
          let vars = Problem.vars p in
          let n = Array.length vars in
          let lo = Array.map (fun (v : Problem.var_info) -> v.lo) vars in
          let hi = Array.map (fun (v : Problem.var_info) -> v.hi) vars in
          for _ = 1 to 1 + Prng.int rng 2 do
            let v = Prng.int rng n in
            if Prng.bool rng 0.5 then
              hi.(v) <- Float.max lo.(v) (hi.(v) /. 2.)
            else lo.(v) <- lo.(v) +. ((hi.(v) -. lo.(v)) /. 2.)
          done;
          let w = Simplex.solve_warm ~warm:b ~lo ~hi p in
          let h = Simplex.solve_warm ?hot ~lo ~hi p in
          let c = Simplex.solve_warm ~lo ~hi p in
          let agree tag (a : Simplex.result) =
            match (a.Simplex.status, c.Simplex.status) with
            | Solution.Optimal a, Solution.Optimal b2 ->
                if Float.abs (a.objective -. b2.objective) > 1e-5 then
                  QCheck.Test.fail_reportf "seed %d: %s=%.9g cold=%.9g" seed
                    tag a.objective b2.objective
                else true
            | Solution.Infeasible, Solution.Infeasible -> true
            | a, b2 ->
                QCheck.Test.fail_reportf "seed %d: %s=%a cold=%a" seed tag
                  Solution.pp_status a Solution.pp_status b2
          in
          agree "warm" w && agree "hot" h)
      | _ -> true)

(* The satellite property from ISSUE 1: across random Wishbone ILP
   instances, warm-started branch & bound and cold branch & bound
   agree on feasibility and on the objective (within 1e-6 relative). *)
let prop_warm_bb_matches_cold_wishbone =
  QCheck.Test.make ~count:75
    ~name:"warm B&B matches cold B&B on Wishbone ILPs"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let spec =
        Apps.Synthetic.random_spec ~seed ~n_ops:(6 + (seed mod 8)) ()
      in
      let contracted = Wishbone.Preprocess.contract spec in
      let encoding =
        if seed mod 2 = 0 then Wishbone.Ilp.Restricted else Wishbone.Ilp.General
      in
      let enc = Wishbone.Ilp.encode encoding contracted in
      let cold_opts =
        { Branch_bound.default_options with Branch_bound.warm_start = false }
      in
      let cold, _ = Branch_bound.solve ~options:cold_opts enc.problem in
      let warm, _ = Branch_bound.solve enc.problem in
      match (cold, warm) with
      | Solution.Optimal a, Solution.Optimal b ->
          let tol = 1e-6 *. Float.max 1. (Float.abs a.objective) in
          if Float.abs (a.objective -. b.objective) > tol then
            QCheck.Test.fail_reportf "seed %d: cold=%.9g warm=%.9g" seed
              a.objective b.objective
          else if Problem.constraint_violation enc.problem b.x > 1e-5 then
            QCheck.Test.fail_reportf "seed %d: warm solution infeasible" seed
          else true
      | Solution.Infeasible, Solution.Infeasible -> true
      | a, b ->
          QCheck.Test.fail_reportf "seed %d: cold=%a warm=%a" seed
            Solution.pp_status a Solution.pp_status b)

(* ---- sparse revised simplex ---- *)

let status_agrees ?(tol = 1e-5) seed tag (a : Solution.status)
    (b : Solution.status) =
  match (a, b) with
  | Solution.Optimal x, Solution.Optimal y ->
      let t = tol *. (1. +. Float.max (Float.abs x.objective) (Float.abs y.objective)) in
      if Float.abs (x.objective -. y.objective) > t then
        QCheck.Test.fail_reportf "seed %d: %s sparse=%.9g dense=%.9g" seed tag
          x.objective y.objective
      else true
  | Solution.Infeasible, Solution.Infeasible -> true
  | Solution.Unbounded, Solution.Unbounded -> true
  (* a pivot budget exhausting on either side is inconclusive *)
  | Solution.Iteration_limit, _ | _, Solution.Iteration_limit -> true
  | a, b ->
      QCheck.Test.fail_reportf "seed %d: %s sparse=%a dense=%a" seed tag
        Solution.pp_status a Solution.pp_status b

(* The tentpole property from ISSUE 5: on random LPs the sparse
   revised simplex and the dense tableau agree on status and (within
   tolerance) on the objective — cold, and warm-started from each
   other's bases. *)
let prop_sparse_matches_dense =
  QCheck.Test.make ~count:1000 ~name:"sparse simplex matches dense (cold+warm)"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let p = Check.Gen.lp rng ~size:(3 + (seed mod 26)) in
      let data = Sparse.of_problem p in
      let dense = Simplex.solve_warm p in
      let sparse = Sparse.solve_warm data in
      let cold_ok =
        status_agrees seed "cold" sparse.Simplex.status dense.Simplex.status
      in
      cold_ok
      &&
      (* tighten a bound branch&bound-style and warm both solvers from
         the *dense* basis: snapshots must be interchangeable *)
      match dense.Simplex.basis with
      | Some b when Solution.is_optimal dense.Simplex.status ->
          let vars = Problem.vars p in
          let n = Array.length vars in
          let lo = Array.map (fun (v : Problem.var_info) -> v.lo) vars in
          let hi = Array.map (fun (v : Problem.var_info) -> v.hi) vars in
          let v = Prng.int rng n in
          if Prng.bool rng 0.5 then
            hi.(v) <- Float.max lo.(v) (lo.(v) +. ((hi.(v) -. lo.(v)) /. 2.))
          else lo.(v) <- lo.(v) +. Float.min 2. ((hi.(v) -. lo.(v)) /. 2.);
          let dw = Simplex.solve_warm ~warm:b ~lo ~hi p in
          let sw = Sparse.solve_warm ~warm:b ~lo ~hi data in
          status_agrees seed "warm" sw.Simplex.status dw.Simplex.status
      | _ -> true)

(* The pricing rules explore different pivot sequences but must land
   on the same optimum: devex (the default) against the candidate-list
   Dantzig rule, cold and warm-started from the devex basis. *)
let prop_devex_matches_dantzig =
  QCheck.Test.make ~count:1000 ~name:"devex and dantzig pricing agree"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let p = Check.Gen.lp rng ~size:(3 + (seed mod 26)) in
      let data = Sparse.of_problem p in
      let dv = { Simplex.default_options with pricing = Simplex.Devex } in
      let dz = { Simplex.default_options with pricing = Simplex.Dantzig } in
      let a = Sparse.solve_warm ~options:dv data in
      let b = Sparse.solve_warm ~options:dz data in
      status_agrees seed "dantzig-cold" b.Simplex.status a.Simplex.status
      &&
      match a.Simplex.basis with
      | Some warm when Solution.is_optimal a.Simplex.status ->
          let w = Sparse.solve_warm ~options:dz ~warm data in
          status_agrees seed "dantzig-warm" w.Simplex.status a.Simplex.status
      | _ -> true)

(* Forrest–Tomlin updates against a fresh refactorisation of the same
   basis: random sparse CSC with an identity head (so a nonsingular
   start exists), a run of random column replacements through
   {!Factor.update}, then FTRAN/BTRAN compared against a from-scratch
   {!Factor.factorize} of the final basis.  The two factors may pivot
   the same columns at different rows, so FTRAN coefficients are
   compared per column and BTRAN inputs are built through each
   factor's own slot convention. *)
let test_ft_update_vs_refresh () =
  let rng = Prng.create 42 in
  for _trial = 1 to 400 do
    let m = 3 + Prng.int rng 20 in
    let extra = 2 + Prng.int rng 20 in
    let ncols = m + extra in
    let cols =
      Array.init ncols (fun j ->
          if j < m then [ (j, 1.) ]
          else begin
            let nnz = 1 + Prng.int rng 4 in
            let seen = Hashtbl.create 4 in
            let l = ref [] in
            for _ = 1 to nnz do
              let i = Prng.int rng m in
              if not (Hashtbl.mem seen i) then begin
                Hashtbl.add seen i ();
                l := (i, Prng.uniform rng (-2.) 2.) :: !l
              end
            done;
            List.sort compare !l
          end)
    in
    let nnz = Array.fold_left (fun a l -> a + List.length l) 0 cols in
    let ptr = Array.make (ncols + 1) 0 in
    for j = 0 to ncols - 1 do
      ptr.(j + 1) <- ptr.(j) + List.length cols.(j)
    done;
    let idx = Array.make (Int.max 1 nnz) 0 in
    let vs = Array.make (Int.max 1 nnz) 0. in
    Array.iteri
      (fun j l ->
        List.iteri
          (fun k (i, v) ->
            idx.(ptr.(j) + k) <- i;
            vs.(ptr.(j) + k) <- v)
          l)
      cols;
    let basis = Array.init m (fun i -> i) in
    let f = Factor.create ~m in
    Alcotest.(check bool)
      "identity head factorises" true
      (Factor.factorize f ~basis ~ptr ~idx ~vs);
    let in_basis = Array.make ncols false in
    Array.iter (fun j -> in_basis.(j) <- true) basis;
    let n_updates = 1 + Prng.int rng 30 in
    let w = Array.make m 0. in
    (try
       for _ = 1 to n_updates do
         let q = ref (Prng.int rng ncols) in
         let guard = ref 0 in
         while in_basis.(!q) && !guard < 100 do
           q := Prng.int rng ncols;
           incr guard
         done;
         if not in_basis.(!q) then begin
           let q = !q in
           Array.fill w 0 m 0.;
           for p = ptr.(q) to ptr.(q + 1) - 1 do
             w.(idx.(p)) <- vs.(p)
           done;
           Factor.ftran f w;
           (* largest |w| row as pivot: always numerically acceptable *)
           let r = ref (-1) in
           let mag = ref 1e-6 in
           for i = 0 to m - 1 do
             if Float.abs w.(i) > !mag then begin
               mag := Float.abs w.(i);
               r := i
             end
           done;
           if !r >= 0 then begin
             Factor.update f ~w ~r:!r;
             in_basis.(basis.(!r)) <- false;
             basis.(!r) <- q;
             in_basis.(q) <- true;
             if Factor.needs_refresh f then raise Exit
           end
         end
       done
     with Exit -> ());
    let basis2 = Array.copy basis in
    let g = Factor.create ~m in
    if Factor.factorize g ~basis:basis2 ~ptr ~idx ~vs then begin
      let b = Array.init m (fun _ -> Prng.uniform rng (-1.) 1.) in
      let x1 = Array.copy b in
      let x2 = Array.copy b in
      Factor.ftran f x1;
      Factor.ftran g x2;
      let coef1 = Hashtbl.create m and coef2 = Hashtbl.create m in
      for r = 0 to m - 1 do
        Hashtbl.replace coef1 basis.(r) x1.(r);
        Hashtbl.replace coef2 basis2.(r) x2.(r)
      done;
      Hashtbl.iter
        (fun c v ->
          let v2 = try Hashtbl.find coef2 c with Not_found -> nan in
          if Float.abs (v -. v2) > 1e-6 || Float.is_nan v2 then
            Alcotest.failf
              "m=%d: FTRAN coefficient of column %d drifted: %.9g vs fresh \
               %.9g"
              m c v v2)
        coef1;
      let cost = Array.init ncols (fun _ -> Prng.uniform rng (-1.) 1.) in
      let y1 = Array.init m (fun r -> cost.(basis.(r))) in
      let y2 = Array.init m (fun r -> cost.(basis2.(r))) in
      Factor.btran f y1;
      Factor.btran g y2;
      for i = 0 to m - 1 do
        if Float.abs (y1.(i) -. y2.(i)) > 1e-6 then
          Alcotest.failf "m=%d: BTRAN row %d drifted: %.9g vs fresh %.9g" m i
            y1.(i) y2.(i)
      done
    end
  done

(* A factor snapshot must replay the identical factorisation: restore
   into a workspace whose state was clobbered by other work, and both
   FTRAN and BTRAN must agree exactly with the factor that was saved. *)
let test_factor_snapshot_roundtrip () =
  let m = 12 in
  let ncols = 2 * m in
  (* identity head, then diagonally dominant columns: any mix of the
     two factorises *)
  let cols =
    Array.init ncols (fun j ->
        if j < m then [ (j, 1.) ]
        else
          List.sort compare [ (j - m, 2.); ((j - m + 1) mod m, 0.5) ])
  in
  let nnz = Array.fold_left (fun a l -> a + List.length l) 0 cols in
  let ptr = Array.make (ncols + 1) 0 in
  for j = 0 to ncols - 1 do
    ptr.(j + 1) <- ptr.(j) + List.length cols.(j)
  done;
  let idx = Array.make nnz 0 and vs = Array.make nnz 0. in
  Array.iteri
    (fun j l ->
      List.iteri
        (fun k (i, v) ->
          idx.(ptr.(j) + k) <- i;
          vs.(ptr.(j) + k) <- v)
        l)
    cols;
  let basis = Array.init m (fun i -> if i mod 2 = 0 then i else m + i) in
  let f = Factor.create ~m in
  Alcotest.(check bool) "factorises" true (Factor.factorize f ~basis ~ptr ~idx ~vs);
  let snap = Factor.snapshot_create ~m in
  Factor.save f snap;
  let probe = Array.init m (fun i -> Float.of_int (i + 1) /. 7.) in
  let want_f = Array.copy probe in
  Factor.ftran f want_f;
  let want_b = Array.copy probe in
  Factor.btran f want_b;
  (* clobber the workspace with a different basis, then restore *)
  let other = Array.init m (fun i -> i) in
  Alcotest.(check bool) "clobber factorises" true
    (Factor.factorize f ~basis:other ~ptr ~idx ~vs);
  Factor.restore snap f;
  let got_f = Array.copy probe in
  Factor.ftran f got_f;
  let got_b = Array.copy probe in
  Factor.btran f got_b;
  for i = 0 to m - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "ftran slot %d identical" i)
      true
      (Float.equal want_f.(i) got_f.(i));
    Alcotest.(check bool)
      (Printf.sprintf "btran slot %d identical" i)
      true
      (Float.equal want_b.(i) got_b.(i))
  done

(* Sessions are a pure performance vehicle: a sequence of warm
   bound-tightened solves through one session must return bit-identical
   results to fresh per-solve state. *)
let test_sparse_session_identical () =
  let rng = Prng.create 11 in
  for case = 1 to 40 do
    let p = Check.Gen.lp rng ~size:(4 + (case mod 20)) in
    let data = Sparse.of_problem p in
    let ses = Sparse.session data in
    let r0 = Sparse.solve_warm data in
    match (r0.Simplex.status, r0.Simplex.basis) with
    | Solution.Optimal _, Some warm ->
        let vars = Problem.vars p in
        let n = Array.length vars in
        let lo = Array.map (fun (v : Problem.var_info) -> v.lo) vars in
        let hi = Array.map (fun (v : Problem.var_info) -> v.hi) vars in
        for _round = 1 to 6 do
          let v = Prng.int rng n in
          if Prng.bool rng 0.5 then
            hi.(v) <- Float.max lo.(v) (lo.(v) +. ((hi.(v) -. lo.(v)) /. 2.))
          else lo.(v) <- lo.(v) +. Float.min 2. ((hi.(v) -. lo.(v)) /. 2.);
          let plain = Sparse.solve_warm ~warm ~lo ~hi data in
          let pooled = Sparse.solve_warm ~warm ~lo ~hi ~session:ses data in
          (match (plain.Simplex.status, pooled.Simplex.status) with
          | Solution.Optimal a, Solution.Optimal b ->
              if not (Float.equal a.objective b.objective && a.x = b.x) then
                Alcotest.failf
                  "case %d: session solve diverged: %.17g vs %.17g" case
                  a.objective b.objective
          | a, b ->
              if a <> b then
                Alcotest.failf "case %d: session status diverged" case);
          Alcotest.(check bool)
            "same warm acceptance" plain.Simplex.warm_used
            pooled.Simplex.warm_used
        done
    | _ -> ()
  done

let test_sparse_edge_cases () =
  (* equality rows, negative bounds, duplicate terms, an infeasible
     system, and an unbounded ray — the dense suite's corner cases
     replayed through the sparse solver *)
  let check_pair name build =
    let p = build () in
    let d = Simplex.solve p in
    let s = Sparse.solve p in
    match (d, s) with
    | Solution.Optimal a, Solution.Optimal b ->
        check_close (name ^ ": objective") a.objective b.objective
    | a, b ->
        if a <> b then
          Alcotest.failf "%s: dense=%a sparse=%a" name Solution.pp_status a
            Solution.pp_status b
  in
  check_pair "equality" (fun () ->
      let p = Problem.create () in
      let x = Problem.add_var p and y = Problem.add_var p in
      Problem.add_constr p [ (x, 1.); (y, 1.) ] Problem.Eq 4.;
      Problem.add_constr p [ (x, 1.); (y, -1.) ] Problem.Le 1.;
      Problem.set_objective p Problem.Maximize [ (x, 3.); (y, 1.) ];
      p);
  check_pair "negative domain" (fun () ->
      let p = Problem.create () in
      let x = Problem.add_var ~lo:(-5.) ~hi:5. p in
      let y = Problem.add_var ~lo:(-3.) ~hi:0. p in
      Problem.add_constr p [ (x, 1.); (y, 2.) ] Problem.Ge (-4.);
      Problem.set_objective p Problem.Minimize [ (x, 1.); (y, 1.) ];
      p);
  check_pair "duplicate terms" (fun () ->
      let p = Problem.create () in
      let x = Problem.add_var ~hi:10. p in
      Problem.add_constr p [ (x, 1.); (x, 1.) ] Problem.Le 6.;
      Problem.set_objective p Problem.Maximize [ (x, 1.) ];
      p);
  check_pair "infeasible" (fun () ->
      let p = Problem.create () in
      let x = Problem.add_var ~hi:1. p in
      Problem.add_constr p [ (x, 1.) ] Problem.Ge 2.;
      p);
  check_pair "unbounded" (fun () ->
      let p = Problem.create () in
      let x = Problem.add_var p in
      Problem.set_objective p Problem.Maximize [ (x, 1.) ];
      p);
  check_pair "no constraints" (fun () ->
      let p = Problem.create () in
      let x = Problem.add_var ~hi:7. p in
      Problem.set_objective p Problem.Maximize [ (x, 2.) ];
      p);
  check_pair "mixed row scales" (fun () ->
      let p = Problem.create () in
      let x = Problem.add_var ~hi:100. p and y = Problem.add_var ~hi:100. p in
      Problem.add_constr p [ (x, 4000.); (y, 1200.) ] Problem.Le 120_000.;
      Problem.add_constr p [ (x, 0.002); (y, 0.009) ] Problem.Le 0.4;
      Problem.set_objective p Problem.Maximize [ (x, 5.); (y, 4.) ];
      p)

let test_sparse_basis_roundtrip () =
  (* a sparse-produced basis must warm-start the dense solver with no
     extra pivots, and vice versa *)
  let p = Problem.create () in
  let vars = Array.init 8 (fun _ -> Problem.add_var ~hi:4. p) in
  Array.iteri
    (fun i v ->
      Problem.add_constr p
        [ (v, 1.); (vars.((i + 1) mod 8), 1.) ]
        Problem.Le 5.)
    vars;
  Problem.set_objective p Problem.Maximize
    (Array.to_list (Array.mapi (fun i v -> (v, Float.of_int (1 + (i mod 3)))) vars));
  let data = Sparse.of_problem p in
  let s = Sparse.solve_warm data in
  let sb =
    match s.Simplex.basis with
    | Some b -> b
    | None -> Alcotest.fail "sparse solve returned no basis"
  in
  let d = Simplex.solve_warm ~warm:sb p in
  Alcotest.(check bool) "dense accepts sparse basis" true d.Simplex.warm_used;
  let db = Option.get d.Simplex.basis in
  let s2 = Sparse.solve_warm ~warm:db data in
  Alcotest.(check bool) "sparse accepts dense basis" true s2.Simplex.warm_used;
  check_close "objectives agree"
    (Solution.get s.Simplex.status).objective
    (Solution.get s2.Simplex.status).objective

(* ---- parallel branch & bound ---- *)

let solve_with ~workers ~solver p =
  let options = { Branch_bound.default_options with workers; solver } in
  Branch_bound.solve ~options p

(* The acceptance property: the same optimum for workers 1, 2 and 4,
   and for the dense and sparse LP engines. *)
let prop_parallel_bb_same_optimum =
  QCheck.Test.make ~count:120 ~name:"parallel B&B optimum independent of workers"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let p = Check.Gen.ilp rng ~size:(3 + (seed mod 10)) in
      let base, _ = solve_with ~workers:1 ~solver:Branch_bound.Dense p in
      List.for_all
        (fun (workers, solver, tag) ->
          let st, _ = solve_with ~workers ~solver p in
          match (st, base) with
          | Solution.Optimal a, Solution.Optimal b ->
              let tol = 1e-6 *. Float.max 1. (Float.abs b.objective) in
              if Float.abs (a.objective -. b.objective) > tol then
                QCheck.Test.fail_reportf "seed %d: %s=%.9g base=%.9g" seed tag
                  a.objective b.objective
              else if Problem.constraint_violation p a.x > 1e-5 then
                QCheck.Test.fail_reportf "seed %d: %s infeasible" seed tag
              else true
          | Solution.Infeasible, Solution.Infeasible -> true
          | Solution.Iteration_limit, _ | _, Solution.Iteration_limit -> true
          | a, b ->
              QCheck.Test.fail_reportf "seed %d: %s=%a base=%a" seed tag
                Solution.pp_status a Solution.pp_status b)
        [
          (2, Branch_bound.Dense, "dense-w2");
          (4, Branch_bound.Dense, "dense-w4");
          (1, Branch_bound.Sparse_revised, "sparse-w1");
          (4, Branch_bound.Sparse_revised, "sparse-w4");
        ])

let test_parallel_bb_deterministic () =
  (* same workers value, same problem: bit-identical solution vectors *)
  let p = random_problem 4242 in
  List.iter
    (fun workers ->
      match (solve_with ~workers ~solver:Branch_bound.Auto p,
             solve_with ~workers ~solver:Branch_bound.Auto p)
      with
      | (Solution.Optimal a, _), (Solution.Optimal b, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "workers=%d reproducible" workers)
            true (a.x = b.x && a.objective = b.objective)
      | (a, _), (b, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "workers=%d same status" workers)
            true
            (Solution.pp_status Format.str_formatter a |> ignore;
             let sa = Format.flush_str_formatter () in
             Solution.pp_status Format.str_formatter b |> ignore;
             sa = Format.flush_str_formatter ()))
    [ 1; 3 ]

let test_parallel_bb_knapsack () =
  let p = Problem.create () in
  let vars = Array.init 12 (fun _ -> Problem.add_var ~hi:1. ~integer:true p) in
  Problem.add_constr p
    (Array.to_list (Array.mapi (fun i v -> (v, Float.of_int (i + 2))) vars))
    Problem.Le 31.;
  Problem.set_objective p Problem.Maximize
    (Array.to_list
       (Array.mapi (fun i v -> (v, Float.of_int ((i * 5 mod 13) + 1))) vars));
  let reference, _ = solve_with ~workers:1 ~solver:Branch_bound.Dense p in
  let robj = (Solution.get reference).objective in
  List.iter
    (fun (workers, solver) ->
      let st, stats = solve_with ~workers ~solver p in
      check_close
        (Printf.sprintf "workers=%d optimum" workers)
        robj
        (Solution.get st).objective;
      Alcotest.(check bool)
        (Printf.sprintf "workers=%d proved" workers)
        true stats.Branch_bound.proved_optimal)
    [
      (2, Branch_bound.Dense);
      (4, Branch_bound.Dense);
      (1, Branch_bound.Sparse_revised);
      (2, Branch_bound.Sparse_revised);
      (4, Branch_bound.Auto);
    ]

(* ---- delta-encoded node bounds ---- *)

(* Replaying a root-to-leaf delta chain must agree with eagerly
   maintained bound arrays after every tightening, for random chains
   that revisit variables (later deltas shadow earlier ones). *)
let test_delta_bounds_roundtrip () =
  let rng = Prng.create 23 in
  for _case = 1 to 200 do
    let n = 2 + Prng.int rng 10 in
    let lo0 = Array.init n (fun _ -> Float.of_int (Prng.int rng 3)) in
    let hi0 =
      Array.init n (fun i -> lo0.(i) +. Float.of_int (2 + Prng.int rng 6))
    in
    let eager_lo = Array.copy lo0 and eager_hi = Array.copy hi0 in
    let deltas = ref [] in
    let depth = Prng.int rng 12 in
    for _ = 1 to depth do
      let v = Prng.int rng n in
      let bup = Prng.bool rng 0.5 in
      let bval =
        if bup then Float.min eager_hi.(v) (eager_lo.(v) +. 1.)
        else Float.max eager_lo.(v) (eager_hi.(v) -. 1.)
      in
      if bup then eager_lo.(v) <- bval else eager_hi.(v) <- bval;
      (* chains are stored leaf-first and replayed root-first *)
      deltas := { Branch_bound.bvar = v; bup; bval } :: !deltas
    done;
    let lo, hi = Branch_bound.materialise ~lo0 ~hi0 (List.rev !deltas) in
    if not (lo = eager_lo && hi = eager_hi) then
      Alcotest.failf "delta chain of depth %d does not round-trip" depth
  done;
  (* an empty chain must reproduce the root bounds and not alias them *)
  let lo0 = [| 0.; 1. |] and hi0 = [| 5.; 6. |] in
  let lo, hi = Branch_bound.materialise ~lo0 ~hi0 [] in
  Alcotest.(check bool) "empty chain equals root" true (lo = lo0 && hi = hi0);
  lo.(0) <- 99.;
  hi.(0) <- 99.;
  Alcotest.(check bool) "materialised arrays are copies" true
    (lo0.(0) = 0. && hi0.(0) = 5.)

(* ---- work-stealing schedule ---- *)

(* The steal schedule explores in timing-dependent order but must land
   on the same optimum as the deterministic wave schedule, for any
   worker count and either LP engine. *)
let prop_steal_bb_same_optimum =
  QCheck.Test.make ~count:120
    ~name:"work-stealing B&B optimum matches wave schedule"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let p = Check.Gen.ilp rng ~size:(3 + (seed mod 10)) in
      let base, _ = solve_with ~workers:1 ~solver:Branch_bound.Dense p in
      List.for_all
        (fun (workers, solver, tag) ->
          let options =
            {
              Branch_bound.default_options with
              Branch_bound.schedule = Branch_bound.Steal;
              workers;
              solver;
            }
          in
          let st, _ = Branch_bound.solve ~options p in
          match (st, base) with
          | Solution.Optimal a, Solution.Optimal b ->
              let tol = 1e-6 *. Float.max 1. (Float.abs b.objective) in
              if Float.abs (a.objective -. b.objective) > tol then
                QCheck.Test.fail_reportf "seed %d: %s=%.9g base=%.9g" seed tag
                  a.objective b.objective
              else if Problem.constraint_violation p a.x > 1e-5 then
                QCheck.Test.fail_reportf "seed %d: %s infeasible" seed tag
              else true
          | Solution.Infeasible, Solution.Infeasible -> true
          | Solution.Iteration_limit, _ | _, Solution.Iteration_limit -> true
          | a, b ->
              QCheck.Test.fail_reportf "seed %d: %s=%a base=%a" seed tag
                Solution.pp_status a Solution.pp_status b)
        [
          (1, Branch_bound.Dense, "steal-dense-w1");
          (2, Branch_bound.Dense, "steal-dense-w2");
          (4, Branch_bound.Sparse_revised, "steal-sparse-w4");
        ])

(* ---- pqueue ---- *)

let test_pqueue_order () =
  let q = Heap.Pqueue.create () in
  let rng = Prng.create 9 in
  let items = List.init 500 (fun i -> (Prng.float rng, i)) in
  List.iter (fun (k, v) -> Heap.Pqueue.push q k v) items;
  Alcotest.(check int) "length" 500 (Heap.Pqueue.length q);
  let rec drain last acc =
    match Heap.Pqueue.pop q with
    | None -> acc
    | Some (k, _) ->
        if k < last then Alcotest.fail "heap order violated";
        drain k (acc + 1)
  in
  Alcotest.(check int) "drained" 500 (drain neg_infinity 0)

let test_pqueue_empty () =
  let q = Heap.Pqueue.create () in
  Alcotest.(check bool) "empty" true (Heap.Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Heap.Pqueue.pop q = None);
  Alcotest.(check bool) "min none" true (Heap.Pqueue.min_key q = None)

let () =
  (* the pivot counter is process-wide; start every suite from a
     clean slate so no test depends on which suite ran before it
     (asserted centrally in test_check.ml) *)
  Lp.Simplex.reset_cumulative_pivots ();
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          tc "basic max" test_lp_basic;
          tc "degenerate" test_lp_degenerate;
          tc "equality" test_lp_equality;
          tc "negative rhs" test_lp_negative_rhs;
          tc "upper bounds" test_lp_upper_bounds;
          tc "negative domain" test_lp_free_negative_lo;
          tc "infeasible" test_lp_infeasible;
          tc "unbounded" test_lp_unbounded;
          tc "no constraints" test_lp_no_constraints;
          tc "fixed variable" test_lp_fixed_var;
          tc "duplicate terms" test_lp_duplicate_terms;
          tc "bound override" test_lp_bound_override;
          tc "conflicting override" test_lp_conflicting_override;
          tc "mixed scale budgets" test_lp_mixed_scale;
        ] );
      ( "branch_bound",
        [
          tc "knapsack" test_ilp_knapsack;
          tc "integrality matters" test_ilp_integrality_matters;
          tc "infeasible" test_ilp_infeasible;
          tc "equality binaries" test_ilp_gap_between_lp_and_ip;
          tc "mixed integer" test_ilp_mixed_integer;
          tc "incumbent trace" test_ilp_incumbent_trace;
        ] );
      ( "warm_start",
        [
          tc "bound change" test_warm_bound_change;
          tc "hot tableau replay" test_hot_tableau_replay;
          tc "detects infeasible" test_warm_detects_infeasible;
          tc "rescaled coefficients" test_warm_rescaled_coefficients;
          tc "most-fractional branching" test_fractional_var_most_fractional;
          tc "warm B&B = cold B&B" test_bb_warm_matches_cold_knapsack;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_bb_matches_brute;
          QCheck_alcotest.to_alcotest prop_lp_feasible_optimal;
          QCheck_alcotest.to_alcotest prop_lp_relaxation_bounds_ilp;
          QCheck_alcotest.to_alcotest prop_warm_lp_matches_cold;
          QCheck_alcotest.to_alcotest prop_warm_bb_matches_cold_wishbone;
        ] );
      ( "sparse",
        [
          tc "edge cases" test_sparse_edge_cases;
          tc "basis round-trip" test_sparse_basis_roundtrip;
          tc "session bit-identical" test_sparse_session_identical;
          QCheck_alcotest.to_alcotest prop_sparse_matches_dense;
          QCheck_alcotest.to_alcotest prop_devex_matches_dantzig;
        ] );
      ( "factor",
        [
          tc "FT updates vs fresh refactorise" test_ft_update_vs_refresh;
          tc "snapshot round-trip" test_factor_snapshot_roundtrip;
        ] );
      ( "parallel",
        [
          tc "knapsack all engines" test_parallel_bb_knapsack;
          tc "deterministic" test_parallel_bb_deterministic;
          tc "delta bounds round-trip" test_delta_bounds_roundtrip;
          QCheck_alcotest.to_alcotest prop_parallel_bb_same_optimum;
          QCheck_alcotest.to_alcotest prop_steal_bb_same_optimum;
        ] );
      ( "pqueue",
        [ tc "heap order" test_pqueue_order; tc "empty" test_pqueue_empty ] );
    ]
