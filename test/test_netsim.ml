(* Network simulator tests: link arithmetic, testbed behaviour under
   light load / CPU overload / network overload, congestion collapse,
   the network profiling tool. *)

open Dataflow

let link = Netsim.Link.cc2420

(* simple probe app: node source -> server sink, payload configurable *)
let probe_app () =
  let b = Builder.create () in
  let s = Builder.in_node b (fun () -> Builder.source b ~name:"probe" ()) in
  (* the sink is attached outside the node namespace *)
  Builder.sink b ~name:"collect" s;
  (Builder.build b, Builder.op_id s)

let run ?(n_nodes = 1) ?(duration = 30.) ?(rate = 2.) ?(payload = 20)
    ?(platform = Profiler.Platform.tmote_sky) () =
  let graph, src = probe_app () in
  let config =
    Netsim.Testbed.default_config ~n_nodes ~duration ~seed:7 ~platform ~link ()
  in
  let sources =
    [
      {
        Netsim.Testbed.source = src;
        rate;
        gen =
          (fun ~node:_ ~seq:_ ->
            Value.Int16_arr (Array.make (Int.max 1 ((payload - 2) / 2)) 0));
      };
    ]
  in
  Netsim.Testbed.run config ~graph ~node_of:(fun i -> i = src) ~sources

(* ---- scheduler: wheel total order = (time, push seq) ---- *)

let drain s =
  let out = ref [] in
  while Netsim.Sched.pop s do
    out := (Netsim.Sched.time s, Netsim.Sched.event s) :: !out
  done;
  List.rev !out

let test_sched_wheel_sorted () =
  (* random times spanning lv0, lv1 and the overflow bucket; expect a
     stable sort by time (FIFO on equal timestamps) *)
  let rng = Prng.create 42 in
  let s = Netsim.Sched.create ~kind:Netsim.Sched.Wheel ~tick:1e-3 () in
  let evs =
    List.init 500 (fun i ->
        let t =
          match Prng.int rng 4 with
          | 0 -> Prng.float rng *. 0.25 (* lv0 frame *)
          | 1 -> Prng.float rng *. 60. (* lv1 frame *)
          | 2 -> 1000. +. (Prng.float rng *. 1000.) (* overflow *)
          | _ -> Float.of_int (Prng.int rng 20) *. 0.125 (* exact ties *)
        in
        (t, i))
  in
  List.iter (fun (t, e) -> Netsim.Sched.push s t e) evs;
  Alcotest.(check int) "length" 500 (Netsim.Sched.length s);
  let expect =
    List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2) evs
  in
  Alcotest.(check (list (pair (float 0.) int))) "stable time order"
    expect (drain s)

let test_sched_wheel_matches_heap () =
  (* distinct keys: both kinds must pop the identical sequence *)
  let rng = Prng.create 9 in
  let evs = List.init 300 (fun i -> ((Prng.float rng *. 300.) +. 1e-9, i)) in
  let go kind =
    let s = Netsim.Sched.create ~kind () in
    List.iter (fun (t, e) -> Netsim.Sched.push s t e) evs;
    drain s
  in
  Alcotest.(check (list (pair (float 0.) int)))
    "heap and wheel agree"
    (go Netsim.Sched.Heap) (go Netsim.Sched.Wheel)

let test_sched_wheel_interleaved () =
  (* simulation-shaped usage: each pop schedules followers at or after
     the popped time; compare against a reference stable sort *)
  let rng = Prng.create 77 in
  let s = Netsim.Sched.create ~kind:Netsim.Sched.Wheel ~tick:1e-4 () in
  let seq = ref 0 in
  let pushed = ref [] in
  let push t =
    Netsim.Sched.push s t !seq;
    pushed := (t, !seq) :: !pushed;
    incr seq
  in
  for _ = 1 to 50 do
    push (Prng.float rng *. 10.)
  done;
  let popped = ref [] in
  while Netsim.Sched.pop s do
    let t = Netsim.Sched.time s in
    popped := (t, Netsim.Sched.event s) :: !popped;
    if !seq < 400 then begin
      (* two followers: one at the popped instant (tie), one later *)
      push t;
      push (t +. (Prng.float rng *. 5.))
    end
  done;
  let expect =
    List.stable_sort
      (fun (t1, s1) (t2, s2) ->
        let c = Float.compare t1 t2 in
        if c <> 0 then c else Int.compare s1 s2)
      (List.rev !pushed)
  in
  Alcotest.(check (list (pair (float 0.) int)))
    "interleaved push/pop keeps the total order"
    expect (List.rev !popped)

(* ---- link arithmetic ---- *)

let test_link_packets_of_bytes () =
  Alcotest.(check int) "zero" 1 (Netsim.Link.packets_of_bytes link 0);
  Alcotest.(check int) "one" 1 (Netsim.Link.packets_of_bytes link 28);
  Alcotest.(check int) "two" 2 (Netsim.Link.packets_of_bytes link 29);
  Alcotest.(check int) "frame" 15 (Netsim.Link.packets_of_bytes link 402)

let test_link_airtime () =
  let t = Netsim.Link.packet_airtime link in
  Alcotest.(check bool) "airtime dominated by stack overhead" true
    (t > link.Netsim.Link.per_packet_overhead_s);
  let cap = Netsim.Link.saturation_msgs_per_sec link in
  Alcotest.(check bool) "TinyOS-like capacity" true (cap > 40. && cap < 120.)

(* ---- testbed ---- *)

let test_light_load_delivers () =
  let r = run ~rate:2. () in
  Alcotest.(check bool) "all inputs processed" true (r.input_fraction > 0.99);
  Alcotest.(check bool) "most messages arrive" true (r.msg_fraction > 0.9);
  Alcotest.(check bool) "sink saw them" true
    (r.sink_outputs = r.msgs_received);
  Alcotest.(check bool) "goodput is the product" true
    (Float.abs (r.goodput_fraction -. (r.input_fraction *. r.msg_fraction))
    < 1e-9)

let test_overload_collapses () =
  (* 402-byte messages at 40/s = 600 pkt/s >> 75 pkt/s capacity *)
  let r = run ~rate:40. ~payload:402 () in
  Alcotest.(check bool) "reception collapses" true (r.msg_fraction < 0.02);
  Alcotest.(check bool) "queue drops dominate" true
    (r.packets_lost_queue > r.packets_sent)

let test_goodput_not_monotone_in_rate () =
  (* §4.3's caveat: beyond saturation, offering more delivers less *)
  let delivered rate =
    let r = run ~rate ~payload:110 ~duration:30. () in
    Float.of_int r.msgs_received /. 30.
  in
  let low = delivered 8. in
  let high = delivered 200. in
  Alcotest.(check bool) "collapse beyond saturation" true (high < low)

let test_cpu_overload_drops_inputs () =
  (* a platform so slow it cannot keep up: most inputs missed *)
  let b = Builder.create () in
  let src = ref 0 in
  Builder.in_node b (fun () ->
      let s = Builder.source b ~name:"s" () in
      src := Builder.op_id s;
      let burn =
        Builder.map b ~name:"burn"
          (fun v -> (v, Workload.make ~float_ops:100_000. ()))
          s
      in
      Builder.sink b ~name:"k" burn);
  let graph = Builder.build b in
  let config =
    Netsim.Testbed.default_config ~n_nodes:1 ~duration:20. ~seed:3
      ~platform:Profiler.Platform.tmote_sky ~link ()
  in
  let sources =
    [
      {
        Netsim.Testbed.source = !src;
        rate = 10.;
        gen = (fun ~node:_ ~seq:_ -> Value.Int16_arr [| 1 |]);
      };
    ]
  in
  let r =
    Netsim.Testbed.run config ~graph
      ~node_of:(fun i -> i <> Graph.n_ops graph - 1)
      ~sources
  in
  (* 100k float ops = 1.5 s per input at 10 inputs/s *)
  Alcotest.(check bool) "inputs dropped" true (r.input_fraction < 0.15);
  Alcotest.(check bool) "node saturated" true (r.node_busy_fraction > 0.9);
  Alcotest.(check bool) "what is processed gets through" true
    (r.msg_fraction > 0.9)

let test_more_nodes_more_contention () =
  let single = run ~n_nodes:1 ~rate:4. ~payload:110 () in
  let many = run ~n_nodes:20 ~rate:4. ~payload:110 () in
  Alcotest.(check bool) "shared channel degrades reception" true
    (many.msg_fraction < single.msg_fraction -. 0.1)

let test_deterministic_given_seed () =
  let a = run ~rate:10. ~payload:110 () in
  let b = run ~rate:10. ~payload:110 () in
  Alcotest.(check int) "same receptions" a.msgs_received b.msgs_received;
  Alcotest.(check int) "same collisions" a.packets_lost_collision
    b.packets_lost_collision

let test_replicated_server_state () =
  (* stateful node-namespace op placed on the server: the server must
     keep one state instance per sending node *)
  let b = Builder.create () in
  let src = ref 0 in
  Builder.in_node b (fun () ->
      let s = Builder.source b ~name:"s" () in
      src := Builder.op_id s;
      let counted =
        Builder.stateful b ~name:"count"
          ~init:(fun () ->
            let n = ref 0 in
            fun ~port:_ _ ->
              incr n;
              ([ Value.Int !n ], Workload.zero))
          [ s ]
      in
      Builder.sink b ~name:"k" counted);
  let graph = Builder.build b in
  let config =
    {
      (Netsim.Testbed.default_config ~n_nodes:4 ~duration:20. ~seed:1
         ~platform:Profiler.Platform.gumstix ~link:Netsim.Link.wifi ())
      with
      Netsim.Testbed.per_packet_cpu_s = 0.;
    }
  in
  let sources =
    [
      {
        Netsim.Testbed.source = !src;
        rate = 1.;
        gen = (fun ~node:_ ~seq:_ -> Value.Int 0);
      };
    ]
  in
  (* "count" on the server: only the source stays on the node *)
  let r =
    Netsim.Testbed.run config ~graph ~node_of:(fun i -> i = !src) ~sources
  in
  (* with per-node state tables every node's stream counts from 1, so
     sink outputs equal messages received (no crash, no cross-talk) *)
  Alcotest.(check int) "every delivery produced output" r.msgs_received
    r.sink_outputs;
  Alcotest.(check bool) "deliveries happened" true (r.msgs_received > 40)

(* ---- netprofile ---- *)

let test_netprofile_sweep_shape () =
  let points =
    Netsim.Netprofile.sweep ~duration:15. ~n_nodes:1 ~link
      ~rates:[ 2.; 20.; 400. ] ()
  in
  match points with
  | [ low; mid; high ] ->
      Alcotest.(check bool) "low rate clean" true (low.reception > 0.9);
      Alcotest.(check bool) "mid rate ok" true (mid.reception > 0.8);
      Alcotest.(check bool) "overload collapses" true (high.reception < 0.5)
  | _ -> Alcotest.fail "expected 3 points"

let test_netprofile_max_send_rate () =
  let p =
    Netsim.Netprofile.max_send_rate ~duration:15. ~target:0.85 ~n_nodes:1 ~link ()
  in
  Alcotest.(check bool) "meets target" true (p.reception >= 0.85);
  Alcotest.(check bool) "single-packet rate near capacity" true
    (p.offered_msgs_per_sec > 20. && p.offered_msgs_per_sec < 120.)

let test_netprofile_shared_channel () =
  let p1 =
    Netsim.Netprofile.max_send_rate ~duration:15. ~n_nodes:1 ~link ()
  in
  let p20 =
    Netsim.Netprofile.max_send_rate ~duration:15. ~n_nodes:20 ~link ()
  in
  Alcotest.(check bool) "per-node share shrinks" true
    (p20.offered_msgs_per_sec < p1.offered_msgs_per_sec /. 4.)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "netsim"
    [
      ( "sched",
        [
          tc "wheel pops in stable (time, seq) order" test_sched_wheel_sorted;
          tc "wheel matches heap on distinct keys"
            test_sched_wheel_matches_heap;
          tc "interleaved push/pop total order" test_sched_wheel_interleaved;
        ] );
      ( "link",
        [
          tc "fragmentation" test_link_packets_of_bytes;
          tc "airtime and capacity" test_link_airtime;
        ] );
      ( "testbed",
        [
          tc "light load delivers" test_light_load_delivers;
          tc "network overload collapses" test_overload_collapses;
          tc "goodput non-monotone in rate" test_goodput_not_monotone_in_rate;
          tc "cpu overload drops inputs" test_cpu_overload_drops_inputs;
          tc "contention scales with nodes" test_more_nodes_more_contention;
          tc "deterministic given seed" test_deterministic_given_seed;
          tc "replicated server state" test_replicated_server_state;
        ] );
      ( "netprofile",
        [
          tc "sweep shape" test_netprofile_sweep_shape;
          tc "max send rate" test_netprofile_max_send_rate;
          tc "shared channel" test_netprofile_shared_channel;
        ] );
    ]
