(* Fault-injection, reliable-transport, load-shedding and adaptive
   controller tests (DESIGN.md §12).

   The "regression" group pins exact pre-fault-injection counter values
   for existing seeds: with [faults = none] and unreliable transport
   the rewritten testbed must make exactly the same PRNG draws in the
   same order as the historical implementation, so these numbers are
   bit-identity checks, not tolerances. *)

open Dataflow

let link = Netsim.Link.cc2420

(* same probe app as test_netsim: node source -> server sink *)
let probe_app () =
  let b = Builder.create () in
  let s = Builder.in_node b (fun () -> Builder.source b ~name:"probe" ()) in
  Builder.sink b ~name:"collect" s;
  (Builder.build b, Builder.op_id s)

let run_probe ?(n_nodes = 1) ?(duration = 30.) ?(rate = 2.) ?(payload = 110)
    ?(seed = 7) ?(faults = Netsim.Faults.none)
    ?(transport = Netsim.Transport.Unreliable) ?(link = link)
    ?(sched = Netsim.Sched.Heap) ?cells ?(domains = 1) () =
  let graph, src = probe_app () in
  let config =
    Netsim.Testbed.default_config ~n_nodes ~duration ~seed
      ~platform:Profiler.Platform.tmote_sky ~link ~faults ~transport ~sched
      ?cells ~domains ()
  in
  let sources =
    [
      {
        Netsim.Testbed.source = src;
        rate;
        gen =
          (fun ~node:_ ~seq:_ ->
            Value.Int16_arr (Array.make (Int.max 1 ((payload - 2) / 2)) 0));
      };
    ]
  in
  Netsim.Testbed.run config ~graph ~node_of:(fun i -> i = src) ~sources

let speech = lazy (Apps.Speech.build ())

let run_speech ?(faults = Netsim.Faults.none)
    ?(transport = Netsim.Transport.Unreliable) ?(duration = 60.) ?(seed = 5)
    ?(rate_mult = 1.0) ?(sched = Netsim.Sched.Heap) ~cut () =
  let t = Lazy.force speech in
  let assignment = Apps.Speech.cut_assignment t cut in
  let config =
    Netsim.Testbed.default_config ~n_nodes:1 ~duration ~seed
      ~platform:Profiler.Platform.tmote_sky ~link ~faults ~transport ~sched ()
  in
  Netsim.Testbed.run config ~graph:t.Apps.Speech.graph
    ~node_of:(fun i -> assignment.(i))
    ~sources:(Apps.Speech.testbed_sources ~rate_mult t)

(* ---- bit-identical regression for existing seeds ---- *)

let check_counters name (r : Netsim.Testbed.result) ~offered ~processed
    ~msent ~mrecv ~psent ~coll ~chan ~queue ~sink ~busy =
  let ck what = Alcotest.(check int) (name ^ ": " ^ what) in
  ck "inputs offered" offered r.inputs_offered;
  ck "inputs processed" processed r.inputs_processed;
  ck "msgs sent" msent r.msgs_sent;
  ck "msgs received" mrecv r.msgs_received;
  ck "packets sent" psent r.packets_sent;
  ck "collisions" coll r.packets_lost_collision;
  ck "channel losses" chan r.packets_lost_channel;
  ck "queue drops" queue r.packets_lost_queue;
  ck "sink outputs" sink r.sink_outputs;
  Alcotest.(check bool)
    (name ^ ": busy fraction bit-identical")
    true
    (Float.abs (r.node_busy_fraction -. busy) < 1e-9);
  (* faults off: every fault/transport counter must stay zero *)
  ck "no duplicates" 0 r.msgs_duplicate;
  ck "no expirations" 0 r.msgs_expired;
  ck "no pending" 0 r.msgs_pending;
  ck "no retransmissions" 0 r.retransmissions;
  ck "no acks" 0 r.acks_sent;
  ck "no crashes" 0 r.crashes

let test_regression_probe_1n () =
  check_counters "probe 1n r10"
    (run_probe ~n_nodes:1 ~rate:10. ())
    ~offered:300 ~processed:300 ~msent:300 ~mrecv:270 ~psent:1200 ~coll:0
    ~chan:29 ~queue:0 ~sink:270 ~busy:0.030020125

let test_regression_probe_20n () =
  check_counters "probe 20n r4"
    (run_probe ~n_nodes:20 ~rate:4. ())
    ~offered:2400 ~processed:2400 ~msent:2400 ~mrecv:300 ~psent:2508
    ~coll:569 ~chan:61 ~queue:7171 ~sink:300 ~busy:0.012005529

let test_regression_speech_cut4 () =
  check_counters "speech cut4"
    (run_speech ~cut:4 ())
    ~offered:2400 ~processed:2400 ~msent:2400 ~mrecv:1 ~psent:4169 ~coll:2
    ~chan:125 ~queue:31810 ~sink:1 ~busy:0.485937500

(* ---- scale-out: wheel scheduler / domain sharding bit-identical ---- *)

let test_wheel_probe_1n () =
  check_counters "wheel probe 1n r10"
    (run_probe ~n_nodes:1 ~rate:10. ~sched:Netsim.Sched.Wheel ())
    ~offered:300 ~processed:300 ~msent:300 ~mrecv:270 ~psent:1200 ~coll:0
    ~chan:29 ~queue:0 ~sink:270 ~busy:0.030020125

let test_wheel_probe_20n () =
  check_counters "wheel probe 20n r4"
    (run_probe ~n_nodes:20 ~rate:4. ~sched:Netsim.Sched.Wheel ())
    ~offered:2400 ~processed:2400 ~msent:2400 ~mrecv:300 ~psent:2508
    ~coll:569 ~chan:61 ~queue:7171 ~sink:300 ~busy:0.012005529

let test_wheel_speech_cut4 () =
  check_counters "wheel speech cut4"
    (run_speech ~cut:4 ~sched:Netsim.Sched.Wheel ())
    ~offered:2400 ~processed:2400 ~msent:2400 ~mrecv:1 ~psent:4169 ~coll:2
    ~chan:125 ~queue:31810 ~sink:1 ~busy:0.485937500

(* every result field, floats compared bit-for-bit: scheduler choice
   and domain count must not move a single ULP *)
let check_same_result name (a : Netsim.Testbed.result)
    (b : Netsim.Testbed.result) =
  let ck what = Alcotest.(check int) (name ^ ": " ^ what) in
  let cf what x y =
    Alcotest.(check bool)
      (name ^ ": " ^ what ^ " bit-identical")
      true
      (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
  in
  ck "inputs offered" a.inputs_offered b.inputs_offered;
  ck "inputs processed" a.inputs_processed b.inputs_processed;
  ck "msgs sent" a.msgs_sent b.msgs_sent;
  ck "msgs received" a.msgs_received b.msgs_received;
  ck "packets sent" a.packets_sent b.packets_sent;
  ck "collisions" a.packets_lost_collision b.packets_lost_collision;
  ck "channel losses" a.packets_lost_channel b.packets_lost_channel;
  ck "queue drops" a.packets_lost_queue b.packets_lost_queue;
  ck "sink outputs" a.sink_outputs b.sink_outputs;
  ck "duplicates" a.msgs_duplicate b.msgs_duplicate;
  ck "expired" a.msgs_expired b.msgs_expired;
  ck "pending" a.msgs_pending b.msgs_pending;
  ck "retransmissions" a.retransmissions b.retransmissions;
  ck "acks sent" a.acks_sent b.acks_sent;
  ck "acks lost" a.acks_lost b.acks_lost;
  ck "crashes" a.crashes b.crashes;
  ck "inputs lost down" a.inputs_lost_down b.inputs_lost_down;
  ck "events processed" a.events_processed b.events_processed;
  cf "input fraction" a.input_fraction b.input_fraction;
  cf "msg fraction" a.msg_fraction b.msg_fraction;
  cf "goodput fraction" a.goodput_fraction b.goodput_fraction;
  cf "busy fraction" a.node_busy_fraction b.node_busy_fraction;
  cf "offered bytes/s" a.offered_bytes_per_sec b.offered_bytes_per_sec;
  ck "edge array length"
    (Array.length a.edge_bytes_per_sec)
    (Array.length b.edge_bytes_per_sec);
  Array.iteri
    (fun i x -> cf (Printf.sprintf "edge %d bytes/s" i) x
        b.edge_bytes_per_sec.(i))
    a.edge_bytes_per_sec

let heavy_faults =
  { Netsim.Faults.burst = Some (Netsim.Faults.burst_of_loss 0.2);
    crash_rate = 0.02;
    reboot_s = 2.;
    clock_drift = 50e-6 }

let test_wheel_equals_heap_under_faults () =
  let go sched =
    run_probe ~n_nodes:8 ~rate:6. ~seed:11 ~faults:heavy_faults
      ~transport:(Netsim.Transport.default_reliable ())
      ~sched ()
  in
  check_same_result "heap vs wheel, faults + reliable"
    (go Netsim.Sched.Heap) (go Netsim.Sched.Wheel)

let test_domains_identical () =
  let cells = Array.init 12 (fun i -> i / 4) in
  let go ~sched ~domains =
    run_probe ~n_nodes:12 ~rate:4. ~seed:13 ~faults:heavy_faults
      ~transport:(Netsim.Transport.default_reliable ())
      ~sched ~cells ~domains ()
  in
  let base = go ~sched:Netsim.Sched.Wheel ~domains:1 in
  check_same_result "wheel domains 1 vs 2" base
    (go ~sched:Netsim.Sched.Wheel ~domains:2);
  check_same_result "wheel domains 1 vs 4" base
    (go ~sched:Netsim.Sched.Wheel ~domains:4);
  (* the cell decomposition is scheduler-independent too *)
  check_same_result "wheel vs heap, 3 cells, domains 2" base
    (go ~sched:Netsim.Sched.Heap ~domains:2)

(* ---- fault injection ---- *)

let burst10 =
  { Netsim.Faults.none with
    Netsim.Faults.burst = Some (Netsim.Faults.burst_of_loss 0.1) }

let test_burst_loss_degrades () =
  let clean = run_probe ~rate:4. () in
  let heavy =
    run_probe ~rate:4.
      ~faults:
        { Netsim.Faults.none with
          Netsim.Faults.burst = Some (Netsim.Faults.burst_of_loss 0.3) }
      ()
  in
  Alcotest.(check bool) "burst loss loses messages" true
    (heavy.msgs_received < clean.msgs_received);
  Alcotest.(check bool) "loss is in the channel counter" true
    (heavy.packets_lost_channel > clean.packets_lost_channel)

let test_crash_accounting () =
  let faults =
    { Netsim.Faults.none with
      Netsim.Faults.crash_rate = 0.05; reboot_s = 2. }
  in
  let r = run_probe ~n_nodes:4 ~rate:4. ~faults () in
  Alcotest.(check bool) "crashes happened" true (r.crashes > 0);
  Alcotest.(check bool) "inputs lost while down" true
    (r.inputs_lost_down > 0);
  Alcotest.(check bool) "downtime shows up as missed inputs" true
    (r.inputs_processed + r.inputs_lost_down <= r.inputs_offered)

let test_deterministic_replay_under_faults () =
  let go () =
    run_probe ~n_nodes:4 ~rate:6.
      ~faults:
        { burst10 with Netsim.Faults.crash_rate = 0.02; clock_drift = 50e-6 }
      ~transport:(Netsim.Transport.default_reliable ())
      ()
  in
  let a = go () and b = go () in
  Alcotest.(check int) "received" a.msgs_received b.msgs_received;
  Alcotest.(check int) "duplicates" a.msgs_duplicate b.msgs_duplicate;
  Alcotest.(check int) "expired" a.msgs_expired b.msgs_expired;
  Alcotest.(check int) "retransmissions" a.retransmissions b.retransmissions;
  Alcotest.(check int) "acks lost" a.acks_lost b.acks_lost;
  Alcotest.(check int) "crashes" a.crashes b.crashes;
  Alcotest.(check int) "collisions" a.packets_lost_collision
    b.packets_lost_collision

let test_fault_streams_independent () =
  (* enabling the crash process must not perturb the burst channel's
     schedule: with crashes on, channel losses can only move because
     traffic moved, so compare against a crash process that never
     fires (rate 0 vs rate tiny-but-zero-crash outcome) *)
  let with_crash_stream =
    run_probe ~rate:4. ~faults:{ burst10 with Netsim.Faults.crash_rate = 0. }
      ()
  in
  let burst_only = run_probe ~rate:4. ~faults:burst10 () in
  Alcotest.(check int) "identical runs" with_crash_stream.msgs_received
    burst_only.msgs_received;
  Alcotest.(check int) "identical channel losses"
    with_crash_stream.packets_lost_channel burst_only.packets_lost_channel

(* ---- reliable transport ---- *)

let test_reliable_recovers_burst_loss () =
  let unreliable = run_probe ~rate:4. ~faults:burst10 () in
  let reliable =
    run_probe ~rate:4. ~faults:burst10
      ~transport:(Netsim.Transport.default_reliable ()) ()
  in
  Alcotest.(check bool) "ack/retry recovers messages" true
    (reliable.msgs_received > unreliable.msgs_received);
  Alcotest.(check bool) "recovery is not free" true
    (reliable.retransmissions > 0);
  Alcotest.(check bool) "acks were sent" true
    (reliable.acks_sent >= reliable.msgs_received)

let test_retry_budget_exhaustion_accounted () =
  (* a channel bad enough that some messages outlive a 1-retry budget:
     the losses must land in msgs_expired, never vanish *)
  let faults =
    { Netsim.Faults.none with
      Netsim.Faults.burst =
        Some (Netsim.Faults.burst_of_loss ~mean_burst_s:10. 0.45) }
  in
  let r =
    run_probe ~rate:4. ~faults
      ~transport:(Netsim.Transport.default_reliable ~max_retries:1 ())
      ()
  in
  Alcotest.(check bool) "some retry budgets exhausted" true
    (r.msgs_expired > 0);
  Alcotest.(check int) "every message accounted for" r.msgs_sent
    (r.msgs_received + r.msgs_expired + r.msgs_pending)

let test_reliable_conservation_invariant () =
  List.iter
    (fun (faults, rate) ->
      let r =
        run_probe ~rate ~n_nodes:3 ~faults
          ~transport:(Netsim.Transport.default_reliable ())
          ()
      in
      Alcotest.(check int)
        (Printf.sprintf "conservation at rate %.0f" rate)
        r.msgs_sent
        (r.msgs_received + r.msgs_expired + r.msgs_pending))
    [
      (Netsim.Faults.none, 2.);
      (burst10, 6.);
      ({ burst10 with Netsim.Faults.crash_rate = 0.03 }, 10.);
    ]

(* qcheck: clean channel + no faults => reliable transport delivers
   exactly what best-effort does.  The one unavoidable difference is
   the simulation horizon: ack airtime shifts the backoff draw
   sequence, so each run may leave a different (tiny) set of messages
   still in flight at t = duration.  On a lossless, uncongested
   channel those horizon stragglers are the only slack — for
   unreliable runs they are exactly [msgs_sent - msgs_received], for
   reliable runs exactly [msgs_pending]. *)
let qcheck_identity_on_clean_channel =
  let clean_link = { link with Netsim.Link.base_loss = 0. } in
  QCheck.Test.make ~count:30
    ~name:"reliable = unreliable on a lossless faultless channel"
    QCheck.(
      triple (int_range 1 40) (int_range 4 110) (int_range 0 10_000))
    (fun (rate10, payload, seed) ->
      let rate = Float.of_int rate10 /. 10. in
      let go transport =
        run_probe ~rate ~payload ~seed ~duration:20. ~link:clean_link
          ~transport ()
      in
      let u = go Netsim.Transport.Unreliable in
      let r = go (Netsim.Transport.default_reliable ()) in
      let u_in_flight = u.msgs_sent - u.msgs_received in
      u.msgs_sent = r.msgs_sent
      && u.inputs_processed = r.inputs_processed
      && r.msgs_expired = 0
      && r.msgs_received + r.msgs_pending = r.msgs_sent
      && u.sink_outputs = u.msgs_received
      && r.sink_outputs = r.msgs_received
      && abs (u.msgs_received - r.msgs_received)
         <= u_in_flight + r.msgs_pending)

(* ---- load shedding ---- *)

let test_shed_drop_newest () =
  let q = Runtime.Shed.create Runtime.Shed.Drop_newest ~capacity:2 in
  Alcotest.(check bool) "first queued" true
    (Runtime.Shed.push q 1 = Runtime.Shed.Queued);
  Alcotest.(check bool) "second queued" true
    (Runtime.Shed.push q 2 = Runtime.Shed.Queued);
  Alcotest.(check bool) "third dropped" true
    (Runtime.Shed.push q 3 = Runtime.Shed.Dropped);
  Alcotest.(check (option int)) "head survives" (Some 1)
    (Runtime.Shed.pop q);
  Alcotest.(check int) "one drop counted" 1 (Runtime.Shed.dropped q)

let test_shed_drop_oldest () =
  let q = Runtime.Shed.create Runtime.Shed.Drop_oldest ~capacity:2 in
  ignore (Runtime.Shed.push q 1);
  ignore (Runtime.Shed.push q 2);
  (match Runtime.Shed.push q 3 with
  | Runtime.Shed.Displaced 1 -> ()
  | _ -> Alcotest.fail "expected the oldest element displaced");
  Alcotest.(check (option int)) "fresh data kept" (Some 2)
    (Runtime.Shed.pop q);
  Alcotest.(check (option int)) "newest kept" (Some 3) (Runtime.Shed.pop q)

let test_shed_sample_hold_extremes () =
  let never = Runtime.Shed.create (Runtime.Shed.Sample_hold 0.) ~capacity:1 in
  ignore (Runtime.Shed.push never 1);
  Alcotest.(check bool) "keep=0 drops every overflow" true
    (Runtime.Shed.push never 2 = Runtime.Shed.Dropped);
  let always =
    Runtime.Shed.create (Runtime.Shed.Sample_hold 1.) ~capacity:1
  in
  ignore (Runtime.Shed.push always 1);
  (match Runtime.Shed.push always 2 with
  | Runtime.Shed.Displaced 1 -> ()
  | _ -> Alcotest.fail "keep=1 must displace")

let test_shed_accounting () =
  let q =
    Runtime.Shed.create ~seed:3 (Runtime.Shed.Sample_hold 0.5) ~capacity:4
  in
  let popped = ref 0 in
  for i = 1 to 200 do
    ignore (Runtime.Shed.push q i);
    if i mod 3 = 0 then
      match Runtime.Shed.pop q with Some _ -> incr popped | None -> ()
  done;
  Alcotest.(check int) "pushed = dropped + queued + popped" 200
    (Runtime.Shed.dropped q + Runtime.Shed.length q + !popped);
  Alcotest.(check bool) "capacity respected" true
    (Runtime.Shed.length q <= Runtime.Shed.capacity q)

let test_shed_rejects_bad_config () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Shed.create: capacity must be positive")
    (fun () ->
      ignore (Runtime.Shed.create Runtime.Shed.Drop_newest ~capacity:0));
  Alcotest.check_raises "keep > 1"
    (Invalid_argument "Shed.create: Sample_hold probability outside [0, 1]")
    (fun () ->
      ignore
        (Runtime.Shed.create (Runtime.Shed.Sample_hold 1.5) ~capacity:1))

(* a 3-op pipeline: node source -> server double -> server sink *)
let as_int = function Value.Int i -> i | _ -> Alcotest.fail "expected Int"

let pipeline_app () =
  let b = Builder.create () in
  let s = Builder.in_node b (fun () -> Builder.source b ~name:"s" ()) in
  let doubled =
    Builder.map b ~name:"double"
      (fun v -> (Value.Int (2 * as_int v), Workload.zero))
      s
  in
  Builder.sink b ~name:"k" doubled;
  (Builder.build b, Builder.op_id s)

let test_splitrun_sheds_and_accounts () =
  let graph, src = pipeline_app () in
  let shed =
    { Runtime.Splitrun.default_shed with
      Runtime.Splitrun.capacity = 1; service = 0 }
  in
  let t = Runtime.Splitrun.create ~shed ~node_of:(fun i -> i = src) graph in
  for i = 1 to 5 do
    let out = Runtime.Splitrun.inject t ~source:src (Value.Int i) in
    Alcotest.(check int)
      (Printf.sprintf "service=0: nothing emitted on inject %d" i)
      0 (List.length out)
  done;
  Alcotest.(check int) "queue holds one crossing" 1
    (Runtime.Splitrun.queued t);
  Alcotest.(check int) "four crossings shed" 4 (Runtime.Splitrun.dropped t);
  Alcotest.(check int) "drops attributed to the source op" 4
    (Runtime.Splitrun.drop_counts t).(src);
  let out = Runtime.Splitrun.drain t in
  Alcotest.(check (list int)) "drop-newest kept the first value" [ 2 ]
    (List.map as_int out);
  Alcotest.(check int) "queue empty after drain" 0 (Runtime.Splitrun.queued t)

let test_splitrun_lossless_when_capacity_suffices () =
  let graph, src = pipeline_app () in
  let shed =
    { Runtime.Splitrun.default_shed with
      Runtime.Splitrun.capacity = 16; service = 1 }
  in
  let t = Runtime.Splitrun.create ~shed ~node_of:(fun i -> i = src) graph in
  let outs = ref [] in
  for i = 1 to 5 do
    outs := !outs @ Runtime.Splitrun.inject t ~source:src (Value.Int i)
  done;
  outs := !outs @ Runtime.Splitrun.drain t;
  Alcotest.(check (list int)) "every value delivered doubled"
    [ 2; 4; 6; 8; 10 ]
    (List.map as_int !outs);
  Alcotest.(check int) "nothing shed" 0 (Runtime.Splitrun.dropped t)

(* ---- adaptive controller ---- *)

let speech_spec =
  lazy
    (let t = Lazy.force speech in
     let raw = Apps.Speech.profile ~duration:5. t in
     match
       Wishbone.Spec.of_profile ~mode:Wishbone.Movable.Conservative
         ~node_platform:Profiler.Platform.tmote_sky raw
     with
     | Ok s -> s
     | Error m -> failwith m)

let test_adaptive_synthetic_bisection () =
  (* pure synthetic plant: goodput 1 iff rate <= 0.1; the controller
     must bracket and converge just above/below the knee *)
  let probe ~rate ~assignment:_ =
    {
      Wishbone.Adaptive.goodput = (if rate <= 0.1 then 1.0 else 0.1);
      input_fraction = 1.0;
      msg_fraction = 1.0;
      node_busy = 0.;
      edge_bytes_per_sec = [||];
    }
  in
  let out =
    Wishbone.Adaptive.run
      ~config:
        { Wishbone.Adaptive.default_config with repartition = false }
      ~spec:(Lazy.force speech_spec)
      ~assignment:[| true |] ~probe ()
  in
  Alcotest.(check bool) "converged" true out.Wishbone.Adaptive.converged;
  Alcotest.(check bool) "found the knee from below" true
    (out.Wishbone.Adaptive.rate <= 0.1
    && out.Wishbone.Adaptive.rate > 0.1 /. 1.2);
  Alcotest.(check bool) "final goodput meets target" true
    (out.Wishbone.Adaptive.goodput >= 0.9)

let test_adaptive_recovers_goodput () =
  (* the ISSUE acceptance demo: under a 10% burst-loss schedule the
     static full-rate deployment collapses; the controller recovers
     goodput to >= 90% *)
  let faults = burst10 in
  let transport = Netsim.Transport.default_reliable () in
  let static = run_speech ~cut:4 ~faults ~transport ~duration:10. () in
  Alcotest.(check bool) "static deployment below 60% goodput" true
    (static.goodput_fraction < 0.6);
  let t = Lazy.force speech in
  let assignment = Apps.Speech.cut_assignment t 4 in
  let probe ~rate ~assignment =
    Wishbone.Adaptive.observe
      (let config =
         Netsim.Testbed.default_config ~n_nodes:1 ~duration:10. ~seed:5
           ~platform:Profiler.Platform.tmote_sky ~link ~faults ~transport ()
       in
       Netsim.Testbed.run config ~graph:t.Apps.Speech.graph
         ~node_of:(fun i -> assignment.(i))
         ~sources:(Apps.Speech.testbed_sources ~rate_mult:rate t))
  in
  let out =
    Wishbone.Adaptive.run ~spec:(Lazy.force speech_spec) ~assignment ~probe ()
  in
  Alcotest.(check bool) "adaptive controller recovers >= 90% goodput" true
    (out.Wishbone.Adaptive.goodput >= 0.9);
  Alcotest.(check bool) "decision trace is non-trivial" true
    (List.length out.Wishbone.Adaptive.trace >= 2)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "faults"
    [
      ( "regression (faults off = bit-identical)",
        [
          tc "probe app, 1 node" test_regression_probe_1n;
          tc "probe app, 20 nodes" test_regression_probe_20n;
          tc "speech cut 4" test_regression_speech_cut4;
        ] );
      ( "scale-out (wheel + domains bit-identical)",
        [
          tc "wheel re-pins probe 1n" test_wheel_probe_1n;
          tc "wheel re-pins probe 20n" test_wheel_probe_20n;
          tc "wheel re-pins speech cut4" test_wheel_speech_cut4;
          tc "heap = wheel under faults + reliable"
            test_wheel_equals_heap_under_faults;
          tc "domains 1/2/4 identical" test_domains_identical;
        ] );
      ( "fault injection",
        [
          tc "burst loss degrades reception" test_burst_loss_degrades;
          tc "crash/reboot accounting" test_crash_accounting;
          tc "deterministic replay" test_deterministic_replay_under_faults;
          tc "fault streams independent" test_fault_streams_independent;
        ] );
      ( "reliable transport",
        [
          tc "recovers burst loss" test_reliable_recovers_burst_loss;
          tc "retry budget exhaustion accounted"
            test_retry_budget_exhaustion_accounted;
          tc "conservation invariant" test_reliable_conservation_invariant;
          QCheck_alcotest.to_alcotest qcheck_identity_on_clean_channel;
        ] );
      ( "load shedding",
        [
          tc "drop-newest" test_shed_drop_newest;
          tc "drop-oldest" test_shed_drop_oldest;
          tc "sample-and-hold extremes" test_shed_sample_hold_extremes;
          tc "accounting" test_shed_accounting;
          tc "invalid configs rejected" test_shed_rejects_bad_config;
          tc "splitrun sheds and accounts" test_splitrun_sheds_and_accounts;
          tc "splitrun lossless when unconstrained"
            test_splitrun_lossless_when_capacity_suffices;
        ] );
      ( "adaptive controller",
        [
          tc "synthetic bisection" test_adaptive_synthetic_bisection;
          tc "recovers goodput under burst loss"
            test_adaptive_recovers_goodput;
        ] );
    ]
