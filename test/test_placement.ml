(* Tier-graph refactor regression suite.

   Four groups:
   - pinned Splitrun runs: the two-tier wrapper over Multirun must
     reproduce the pre-refactor engine bit-for-bit (sink digests,
     traffic counters, per-operator drop counts) on frozen seeds;
   - Figure 3 goldens solved through the generic placement core;
   - a hand-checked three-tier fixture where the optimum is computed
     on paper, solved via Three_tier (now a Placement instance) and
     cross-checked against the independent brute force;
   - a Multirun three-tier end-to-end run exercising per-link offered
     traffic, drop accounting, queue inspection and reset. *)

open Dataflow
open Wishbone

let feq ?(tol = 1e-6) = Alcotest.(check (float tol))

(* ---- pinned Splitrun regressions ---------------------------------- *)

(* Frozen before the Multirun refactor (see CHANGES.md): random specs
   and cuts from the check-library generator, 12 rounds of injections
   plus a final drain, under four shed configurations.  The digest is
   [Hashtbl.hash] of the ordered sink-value list; the tuple is
   (seed, digest, crossing elems, crossing bytes, dropped,
   per-op drop counts). *)

let pin_scenario ~seed ~shed =
  let rng = Prng.create seed in
  let cfg =
    {
      Check.Gen.default_cfg with
      Check.Gen.n_ops = 8;
      extra_edge_prob = 0.25;
      stateful_prob = 0.3;
      mode = Movable.Conservative;
      tightness = 0.5;
    }
  in
  let spec = Check.Gen.spec rng cfg in
  let cut = Check.Gen.random_cut rng spec in
  let g = spec.Spec.graph in
  let sources =
    Array.to_list (Graph.ops g)
    |> List.filter (fun (o : Op.t) -> o.side_effect = Op.Sensor_input)
    |> List.map (fun (o : Op.t) -> o.id)
  in
  let split = Runtime.Splitrun.create ?shed ~node_of:(fun i -> cut.(i)) g in
  let sinks = ref [] in
  for k = 0 to 11 do
    List.iter
      (fun src ->
        let v = Value.Int ((17 * k) + src) in
        sinks :=
          List.rev_append (Runtime.Splitrun.inject split ~source:src v) !sinks)
      sources
  done;
  sinks := List.rev_append (Runtime.Splitrun.drain split) !sinks;
  let elems, bytes = Runtime.Splitrun.crossing_traffic split in
  ( Hashtbl.hash (List.rev !sinks),
    elems,
    bytes,
    Runtime.Splitrun.dropped split,
    Array.to_list (Runtime.Splitrun.drop_counts split) )

let pin_configs =
  [
    ("perfect", None);
    ( "drop_newest",
      Some
        {
          Runtime.Splitrun.policy = Runtime.Shed.Drop_newest;
          capacity = 2;
          service = 1;
          seed = 11;
        } );
    ( "drop_oldest",
      Some
        {
          Runtime.Splitrun.policy = Runtime.Shed.Drop_oldest;
          capacity = 3;
          service = 0;
          seed = 12;
        } );
    ( "sample_hold",
      Some
        {
          Runtime.Splitrun.policy = Runtime.Shed.Sample_hold 0.5;
          capacity = 2;
          service = 1;
          seed = 13;
        } );
  ]

(* (seed, digest, elems, bytes, dropped, drop_counts) per config *)
let pins =
  [
    ( "perfect",
      [
        (1, 289291826, 61, 244, 0, [ 0; 0; 0; 0; 0; 0; 0; 0 ]);
        (2, 947484496, 64, 256, 0, [ 0; 0; 0; 0; 0; 0; 0; 0 ]);
        (3, 443827067, 1680, 6720, 0, [ 0; 0; 0; 0; 0; 0; 0; 0 ]);
        (4, 624045902, 30, 120, 0, [ 0; 0; 0; 0; 0; 0; 0; 0 ]);
        (5, 679183688, 72, 288, 0, [ 0; 0; 0; 0; 0; 0; 0; 0 ]);
      ] );
    ( "drop_newest",
      [
        (1, 801792612, 61, 244, 48, [ 12; 8; 0; 0; 0; 0; 28; 0 ]);
        (2, 391751413, 64, 256, 51, [ 0; 0; 0; 23; 0; 8; 20; 0 ]);
        (3, 571993385, 1680, 6720, 1667, [ 0; 0; 0; 0; 0; 0; 1667; 0 ]);
        (4, 624045902, 30, 120, 17, [ 0; 0; 11; 0; 6; 0; 0; 0 ]);
        (5, 507801830, 72, 288, 59, [ 12; 0; 23; 0; 24; 0; 0; 0 ]);
      ] );
    ( "drop_oldest",
      [
        (1, 1007542413, 61, 244, 58, [ 11; 15; 0; 0; 0; 0; 32; 0 ]);
        (2, 723223200, 64, 256, 61, [ 0; 0; 0; 28; 0; 9; 24; 0 ]);
        (3, 216106577, 1680, 6720, 1677, [ 0; 0; 0; 0; 0; 0; 1677; 0 ]);
        (4, 305261850, 30, 120, 27, [ 0; 5; 11; 0; 11; 0; 0; 0 ]);
        (5, 1027448750, 72, 288, 69, [ 23; 0; 22; 0; 24; 0; 0; 0 ]);
      ] );
    ( "sample_hold",
      [
        (1, 350400753, 61, 244, 48, [ 11; 9; 0; 0; 0; 0; 28; 0 ]);
        (2, 563632509, 64, 256, 51, [ 0; 0; 0; 21; 0; 7; 23; 0 ]);
        (3, 687985414, 1680, 6720, 1667, [ 0; 0; 0; 0; 0; 0; 1667; 0 ]);
        (4, 71636410, 30, 120, 17, [ 0; 1; 11; 0; 5; 0; 0; 0 ]);
        (5, 436312242, 72, 288, 59, [ 22; 0; 21; 0; 16; 0; 0; 0 ]);
      ] );
  ]

let test_splitrun_pins () =
  List.iter
    (fun (cname, expected) ->
      let shed = List.assoc cname pin_configs in
      List.iter
        (fun (seed, digest, elems, bytes, dropped, drop_counts) ->
          let d, e, b, dr, dc = pin_scenario ~seed ~shed in
          let lbl what = Printf.sprintf "%s seed %d: %s" cname seed what in
          Alcotest.(check int) (lbl "sink digest") digest d;
          Alcotest.(check int) (lbl "crossing elems") elems e;
          Alcotest.(check int) (lbl "crossing bytes") bytes b;
          Alcotest.(check int) (lbl "dropped") dropped dr;
          Alcotest.(check (list int)) (lbl "drop counts") drop_counts dc)
        expected)
    pins

(* ---- Figure 3 goldens through the generic core -------------------- *)

let solve_fig3 budget =
  let spec = Apps.Synthetic.fig3_spec ~cpu_budget:budget in
  match Placement.solve (Placement.of_spec spec) with
  | Placement.Partitioned r -> r
  | Placement.No_feasible_partition ->
      Alcotest.fail (Printf.sprintf "fig3 budget %g: no placement" budget)
  | Placement.Solver_failure m -> Alcotest.fail m

let test_fig3_cut_bandwidths () =
  List.iter
    (fun (budget, bw) ->
      let r = solve_fig3 budget in
      feq
        (Printf.sprintf "budget %g -> cut bandwidth %g" budget bw)
        bw
        r.Placement.link_net.(0))
    [ (2., 8.); (3., 6.); (4., 5.) ]

let test_fig3_partition_shape () =
  let r = solve_fig3 4. in
  let node_ops =
    List.filter
      (fun i -> r.Placement.tier_of.(i) = 0)
      (List.init (Array.length r.Placement.tier_of) Fun.id)
  in
  Alcotest.(check (list int)) "ops on the node at budget 4" [ 0; 1; 2 ]
    node_ops;
  feq "objective = cut bandwidth" r.Placement.link_net.(0)
    r.Placement.objective

(* ---- hand-checked three-tier fixture ------------------------------ *)

let passthrough () =
  Op.stateless_instance (fun v -> ([ v ], Workload.make ~call_ops:1. ()))

let mk_op ?(namespace = Op.Node) ?(stateful = false) ?(side_effect = Op.Pure)
    id name =
  { Op.id; name; kind = "t"; namespace; stateful; side_effect;
    fresh = passthrough }

(* src -> a -> b -> sink with edge bandwidths 10 / 4 / 2 B/s *)
let chain_graph () =
  let ops =
    [|
      mk_op ~side_effect:Op.Sensor_input 0 "src";
      mk_op 1 "a";
      mk_op 2 "b";
      mk_op ~namespace:Op.Server ~side_effect:Op.Display_output 3 "sink";
    |]
  in
  Graph.make ops [ (0, 1, 0); (1, 2, 0); (2, 3, 0) ]

let chain_spec () =
  let g = chain_graph () in
  match Movable.classify Movable.Conservative g with
  | Error m -> Alcotest.fail m
  | Ok placement ->
      {
        Spec.graph = g;
        placement;
        cpu = [| 0.5; 0.4; 0.4; 0. |];
        bandwidth = [| 10.; 4.; 2. |];
        cpu_budget = 1.0;
        net_budget = 1e9;
        alpha = 0.;
        beta = 1.;
      }

(* Worked by hand.  src is pinned to the mote, sink to the central
   server; a and b are free but must descend monotonically.  The mote
   (budget 1.0) cannot hold src+a+b (1.3), the microserver (budget
   0.15) can hold at most one of a/b (0.1 each).  A mote->central
   crossing is carried by both radio layers.  Candidates:

     a=mote,  b=micro   : 1.0*4  + 0.3*2  = 4.6   <- optimum
     a=mote,  b=central : 1.0*4  + 0.3*4  = 5.2
     a=micro, b=central : 1.0*10 + 0.3*4  = 11.2
     a=micro, b=micro   : micro CPU 0.2 > 0.15, infeasible
     a=b=mote           : mote CPU 1.3 > 1.0, infeasible
     a=b=central        : 1.0*10 + 0.3*10 = 13. *)
let test_three_tier_hand_checked () =
  let tt =
    Three_tier.of_spec ~micro_cpu_budget:0.15
      ~micro_cpu:[| 0.; 0.1; 0.1; 0. |] (chain_spec ())
  in
  (match Three_tier.solve tt with
  | Three_tier.Partitioned r ->
      Alcotest.(check bool) "tiers = [mote; mote; micro; central]" true
        (r.Three_tier.tiers
        = [| Three_tier.Mote; Three_tier.Mote; Three_tier.Microserver;
             Three_tier.Central |]);
      feq "objective" 4.6 r.Three_tier.objective;
      feq "mote cut" 4. r.Three_tier.mote_net;
      feq "micro cut" 2. r.Three_tier.micro_net;
      feq "mote cpu" 0.9 r.Three_tier.mote_cpu;
      feq "micro cpu" 0.1 r.Three_tier.micro_cpu;
      Alcotest.(check (pair (pair int int) int)) "tier counts" ((2, 1), 1)
        (let m, mi, c = Three_tier.tier_counts r in
         ((m, mi), c))
  | _ -> Alcotest.fail "three-tier solve failed");
  match Three_tier.brute_force tt with
  | Some (tiers, obj) ->
      Alcotest.(check bool) "brute force agrees on tiers" true
        (tiers
        = [| Three_tier.Mote; Three_tier.Mote; Three_tier.Microserver;
             Three_tier.Central |]);
      feq "brute force agrees on objective" 4.6 obj
  | None -> Alcotest.fail "brute force found no feasible assignment"

(* tightening the microserver out of the picture collapses to the
   two-tier optimum on the same chain *)
let test_three_tier_collapses_to_two () =
  let tt =
    Three_tier.of_spec ~micro_cpu_budget:0.
      ~micro_cpu:[| 0.; 0.1; 0.1; 0. |] (chain_spec ())
  in
  match Three_tier.solve tt with
  | Three_tier.Partitioned r ->
      (* a on the mote, b forced past the empty microserver: the b->sink
         edge rides both layers, so 1.0*4 + 0.3*4 *)
      Alcotest.(check bool) "nobody on the microserver" true
        (Array.for_all (fun t -> t <> Three_tier.Microserver)
           r.Three_tier.tiers);
      feq "objective" 5.2 r.Three_tier.objective
  | _ -> Alcotest.fail "three-tier solve failed"

(* ---- Multirun three-tier end-to-end ------------------------------- *)

(* The same chain at tiers [0;0;1;2]: the a->b crossing parks in a
   capacity-1 service-0 channel on link 0 (so only drain moves it),
   link 1 is perfect.  Injecting k samples offers k crossings on
   link 0, keeps 1 queued, drops k-1 — all charged to operator a. *)
let test_multirun_three_tier_e2e () =
  let g = chain_graph () in
  let tier_of = [| 0; 0; 1; 2 |] in
  let mr =
    Runtime.Multirun.create
      ~links:
        [
          Some
            {
              Runtime.Multirun.policy = Runtime.Shed.Drop_newest;
              capacity = 1;
              service = 0;
              seed = 7;
            };
          None;
        ]
      ~n_tiers:3
      ~tier_of:(fun i -> tier_of.(i))
      g
  in
  Alcotest.(check int) "3 tiers" 3 (Runtime.Multirun.n_tiers mr);
  Alcotest.(check int) "tier of b" 1 (Runtime.Multirun.tier_of mr 2);
  let rounds = 5 in
  for k = 1 to rounds do
    let out = Runtime.Multirun.inject mr ~source:0 (Value.Int k) in
    Alcotest.(check int)
      (Printf.sprintf "inject %d: nothing reaches the sink yet" k)
      0 (List.length out)
  done;
  let e0, b0 = Runtime.Multirun.link_traffic mr 0 in
  Alcotest.(check int) "link 0 offered elems" rounds e0;
  Alcotest.(check bool) "link 0 offered bytes" true (b0 > 0);
  Alcotest.(check int) "link 0 queued" 1 (Runtime.Multirun.link_queued mr 0);
  Alcotest.(check int) "link 0 dropped" (rounds - 1)
    (Runtime.Multirun.link_dropped mr 0);
  Alcotest.(check (list int)) "link 0 drops charged to a" [ 0; rounds - 1; 0; 0 ]
    (Array.to_list (Runtime.Multirun.link_drop_counts mr 0));
  (* link 1 is untouched until the queued crossing is serviced *)
  Alcotest.(check (pair int int)) "link 1 idle" (0, 0)
    (Runtime.Multirun.link_traffic mr 1);
  let sinks = Runtime.Multirun.drain mr in
  (* the surviving crossing fires b on tier 1; its output rides the
     perfect link 1 straight into the sink *)
  Alcotest.(check int) "one value reaches the sink" 1 (List.length sinks);
  Alcotest.(check int) "link 0 drained" 0 (Runtime.Multirun.link_queued mr 0);
  let e1, _ = Runtime.Multirun.link_traffic mr 1 in
  Alcotest.(check int) "link 1 carried the serviced crossing" 1 e1;
  Alcotest.(check int) "link 1 dropped nothing" 0
    (Runtime.Multirun.link_dropped mr 1);
  (* reset zeroes traffic and per-op drop accounting *)
  Runtime.Multirun.reset mr;
  Alcotest.(check (pair int int)) "reset: link 0 traffic" (0, 0)
    (Runtime.Multirun.link_traffic mr 0);
  Alcotest.(check int) "reset: link 0 queue flushed" 0
    (Runtime.Multirun.link_queued mr 0);
  Alcotest.(check (list int)) "reset: drop counts" [ 0; 0; 0; 0 ]
    (Array.to_list (Runtime.Multirun.link_drop_counts mr 0));
  let out = Runtime.Multirun.inject mr ~source:0 (Value.Int 99) in
  Alcotest.(check int) "engine still runs after reset" 0 (List.length out);
  Alcotest.(check int) "fresh crossing queued" 1
    (Runtime.Multirun.link_queued mr 0)

(* ---- work-stealing frontier on the EEG instances ------------------- *)

(* The opt-in [Steal] schedule races per-worker frontiers, so node
   exploration order is timing-dependent — but the optimum it returns
   must match the deterministic [Wave] baseline for any worker count.
   Pinned on the two EEG placement encodings at each instance's own
   maximum feasible rate (found by the placement rate search), where
   the branch & bound tree is non-trivial but solves well inside the
   default budget. *)
let test_steal_eeg () =
  let solve_obj ~schedule ~workers problem =
    let options =
      { Lp.Branch_bound.default_options with Lp.Branch_bound.schedule; workers }
    in
    match Lp.Branch_bound.solve ~options problem with
    | Lp.Solution.Optimal o, _ -> o.Lp.Solution.objective
    | _ -> Alcotest.fail "expected optimal placement ILP"
  in
  let instance name ~n_channels =
    let raw = Apps.Eeg.profile ~duration:30. (Apps.Eeg.build ~n_channels ()) in
    let spec =
      match
        Spec.of_profile ~mode:Movable.Permissive
          ~node_platform:Profiler.Platform.tmote_sky raw
      with
      | Ok s -> s
      | Error m -> Alcotest.failf "%s spec: %s" name m
    in
    let rate =
      match Rate_search.search_placement (Placement.of_spec spec) with
      | Some r -> r.Rate_search.placement_multiplier
      | None -> Alcotest.failf "%s: rate search found no feasible rate" name
    in
    let pl = Placement.of_spec (Spec.scale_rate spec rate) in
    let c = Preprocess.contract pl.Placement.spec in
    let enc = Placement.encode Placement.Restricted pl c in
    let problem = enc.Placement.problem in
    let reference =
      solve_obj ~schedule:Lp.Branch_bound.Wave ~workers:1 problem
    in
    List.iter
      (fun workers ->
        let obj = solve_obj ~schedule:Lp.Branch_bound.Steal ~workers problem in
        feq ~tol:1e-9
          (Printf.sprintf "%s steal w=%d matches wave optimum" name workers)
          reference obj)
      [ 1; 2; 4 ]
  in
  instance "eeg14" ~n_channels:14;
  instance "eeg22" ~n_channels:22

(* ---- hand-checked Y (tree) fixture -------------------------------- *)

(* Two independent sensing branches share the microserver -> root
   uplink:

        leafA(0)   leafB(1)
             \      /
              M(2)
               |
             root(3)        parents [|2;2;3;-1|]

   ops   srcA(0) -> a(1) -> sinkA(2)   edge bandwidths 4, 1 B/s
         srcB(3) -> b(4) -> sinkB(5)   edge bandwidths 4, 2 B/s

   srcA is pinned to leafA by classification, srcB tier-pinned onto
   leafB, both sinks to the root.  A leaf (budget 0.5) cannot hold
   src+filter (0.3+0.4); M (budget 0.3) holds at most one filter (0.2
   each).  Shared-uplink loads of the three candidates (betas 1/1/0.3,
   alphas 0):

     a=M,    b=root : e2 = 1+4 = 5,  obj 4 + 4 + 0.3*5 = 9.5  <- optimum
     a=root, b=M    : e2 = 4+2 = 6,  obj 9.8
     a=root, b=root : e2 = 4+4 = 8,  obj 10.4

   With shared budget 5.5 only the optimum fits.  At 4.9 the tree is
   infeasible although EACH branch taken alone as a 3-tier chain
   (shared-link load 1 resp. 2) still fits comfortably: the shared
   root edge binds, which any per-branch chain relaxation would
   over-admit. *)

let y_leaf_cpu = [| 0.3; 0.4; 0.; 0.3; 0.4; 0. |]

let y_spec () =
  let ops =
    [|
      mk_op ~side_effect:Op.Sensor_input 0 "srcA";
      mk_op 1 "a";
      mk_op ~namespace:Op.Server ~side_effect:Op.Display_output 2 "sinkA";
      mk_op ~side_effect:Op.Sensor_input 3 "srcB";
      mk_op 4 "b";
      mk_op ~namespace:Op.Server ~side_effect:Op.Display_output 5 "sinkB";
    |]
  in
  let g = Graph.make ops [ (0, 1, 0); (1, 2, 0); (3, 4, 0); (4, 5, 0) ] in
  match Movable.classify Movable.Conservative g with
  | Error m -> Alcotest.fail m
  | Ok placement ->
      {
        Spec.graph = g;
        placement;
        cpu = y_leaf_cpu;
        bandwidth = [| 4.; 1.; 4.; 2. |];
        cpu_budget = 0.5;
        net_budget = 1e9;
        alpha = 0.;
        beta = 1.;
      }

let y_placement ~shared_budget =
  let leaf tname =
    { Placement.tname; cpu = y_leaf_cpu; cpu_budget = 0.5; alpha = 0. }
  in
  Placement.v
    ~topology:(Placement.Topology.of_parents [| 2; 2; 3; -1 |])
    ~pins:[ (3, 1) ] (* srcB onto leafB, overriding its node pin *)
    ~spec:(y_spec ())
    ~tiers:
      [
        leaf "leafA";
        leaf "leafB";
        {
          Placement.tname = "micro";
          cpu = [| 0.; 0.2; 0.; 0.; 0.2; 0. |];
          cpu_budget = 0.3;
          alpha = 0.;
        };
        {
          Placement.tname = "root";
          cpu = Array.make 6 0.;
          cpu_budget = infinity;
          alpha = 0.;
        };
      ]
    ~links:
      [
        { Placement.lname = "leafA-up"; net_budget = infinity; beta = 1. };
        { Placement.lname = "leafB-up"; net_budget = infinity; beta = 1. };
        { Placement.lname = "shared-up"; net_budget = shared_budget;
          beta = 0.3 };
      ]
    ()

(* one branch of the Y alone, as the 3-tier chain leaf -> micro -> root
   over the same budgets and weights *)
let y_branch_placement ~last_bw ~shared_budget =
  let ops =
    [|
      mk_op ~side_effect:Op.Sensor_input 0 "src";
      mk_op 1 "f";
      mk_op ~namespace:Op.Server ~side_effect:Op.Display_output 2 "sink";
    |]
  in
  let g = Graph.make ops [ (0, 1, 0); (1, 2, 0) ] in
  match Movable.classify Movable.Conservative g with
  | Error m -> Alcotest.fail m
  | Ok placement ->
      let spec =
        {
          Spec.graph = g;
          placement;
          cpu = [| 0.3; 0.4; 0. |];
          bandwidth = [| 4.; last_bw |];
          cpu_budget = 0.5;
          net_budget = 1e9;
          alpha = 0.;
          beta = 1.;
        }
      in
      Placement.v ~spec
        ~tiers:
          [
            { Placement.tname = "leaf"; cpu = [| 0.3; 0.4; 0. |];
              cpu_budget = 0.5; alpha = 0. };
            { Placement.tname = "micro"; cpu = [| 0.; 0.2; 0. |];
              cpu_budget = 0.3; alpha = 0. };
            { Placement.tname = "root"; cpu = [| 0.; 0.; 0. |];
              cpu_budget = infinity; alpha = 0. };
          ]
        ~links:
          [
            { Placement.lname = "leaf-up"; net_budget = infinity; beta = 1. };
            { Placement.lname = "shared-up"; net_budget = shared_budget;
              beta = 0.3 };
          ]
        ()

let test_y_tree_hand_checked () =
  let pl = y_placement ~shared_budget:5.5 in
  (match Placement.solve pl with
  | Placement.Partitioned r ->
      Alcotest.(check (list int)) "tiers = srcA@leafA a@M sinkA@root ..."
        [ 0; 2; 3; 1; 3; 3 ]
        (Array.to_list r.Placement.tier_of);
      feq "objective" 9.5 r.Placement.objective;
      feq "leafA uplink" 4. r.Placement.link_net.(0);
      feq "leafB uplink" 4. r.Placement.link_net.(1);
      feq "shared uplink (binding)" 5. r.Placement.link_net.(2);
      List.iteri
        (fun p want ->
          feq (Printf.sprintf "tier %d cpu" p) want r.Placement.tier_cpu.(p))
        [ 0.3; 0.3; 0.2; 0. ];
      Alcotest.(check bool) "feasible accepts the optimum" true
        (Placement.feasible pl ~tier_of:r.Placement.tier_of)
  | Placement.No_feasible_partition ->
      Alcotest.fail "Y tree: expected a partition at shared budget 5.5"
  | Placement.Solver_failure m -> Alcotest.fail m);
  (* the bidirectional encoding lands on the same optimum *)
  match Placement.solve ~encoding:Placement.General pl with
  | Placement.Partitioned r -> feq "general objective" 9.5 r.Placement.objective
  | _ -> Alcotest.fail "Y tree: general encoding failed"

let test_y_tree_shared_edge_binds () =
  (match Placement.solve (y_placement ~shared_budget:4.9) with
  | Placement.No_feasible_partition -> ()
  | Placement.Partitioned r ->
      Alcotest.failf "tree at shared budget 4.9 should be infeasible, got %g"
        r.Placement.objective
  | Placement.Solver_failure m -> Alcotest.fail m);
  (* each branch alone still fits the very same shared budget *)
  List.iter
    (fun (name, last_bw) ->
      match Placement.solve (y_branch_placement ~last_bw ~shared_budget:4.9) with
      | Placement.Partitioned r ->
          Alcotest.(check (list int))
            (name ^ " alone stays feasible, filter on the microserver")
            [ 0; 1; 2 ]
            (Array.to_list r.Placement.tier_of)
      | _ -> Alcotest.fail (name ^ ": branch chain should stay feasible"))
    [ ("branch A", 1.); ("branch B", 2.) ];
  (* rate search: the shared uplink caps the tree at ~1.1x while either
     branch alone reaches its CPU-bound 1.5x *)
  (match Rate_search.search_placement (y_placement ~shared_budget:5.5) with
  | Some r ->
      let m = r.Rate_search.placement_multiplier in
      Alcotest.(check bool)
        (Printf.sprintf "tree multiplier %.3f within [1.0, 1.12]" m)
        true
        (m >= 1.0 && m <= 1.12)
  | None -> Alcotest.fail "tree rate search found no feasible rate");
  List.iter
    (fun (name, last_bw) ->
      match
        Rate_search.search_placement
          (y_branch_placement ~last_bw ~shared_budget:5.5)
      with
      | Some r ->
          let m = r.Rate_search.placement_multiplier in
          Alcotest.(check bool)
            (Printf.sprintf "%s multiplier %.3f >= 1.4" name m)
            true (m >= 1.4)
      | None -> Alcotest.fail (name ^ ": rate search found no feasible rate"))
    [ ("branch A", 1.); ("branch B", 2.) ]

(* ---- chain as a degenerate tree ----------------------------------- *)

(* the hand-checked three-tier chain built through an explicit
   [Topology.of_parents [|1;2;-1|]] must encode the byte-identical ILP
   and solve to the same partition as the implicit chain constructor *)
let chain3 ?topology () =
  let spec = chain_spec () in
  Placement.v ?topology ~spec
    ~tiers:
      [
        { Placement.tname = "mote"; cpu = spec.Spec.cpu; cpu_budget = 1.0;
          alpha = 0. };
        { Placement.tname = "micro"; cpu = [| 0.; 0.1; 0.1; 0. |];
          cpu_budget = 0.15; alpha = 0. };
        { Placement.tname = "central"; cpu = Array.make 4 0.;
          cpu_budget = infinity; alpha = 0. };
      ]
    ~links:
      [
        { Placement.lname = "radio0"; net_budget = 1e9; beta = 1. };
        { Placement.lname = "radio1"; net_budget = 1e9; beta = 0.3 };
      ]
    ()

let test_chain_tree_byte_identical () =
  let implicit = chain3 () in
  let explicit =
    chain3 ~topology:(Placement.Topology.of_parents [| 1; 2; -1 |]) ()
  in
  Alcotest.(check bool) "explicit 3-chain recognised as a chain" true
    (Placement.Topology.is_chain explicit.Placement.topology);
  List.iter
    (fun (label, encoding, contraction) ->
      let render t =
        let c = contraction t.Placement.spec in
        Format.asprintf "%a" Lp.Problem.pp
          (Placement.encode encoding t c).Placement.problem
      in
      Alcotest.(check string) (label ^ ": byte-identical ILP")
        (render implicit) (render explicit))
    [
      ("restricted/contracted", Placement.Restricted, Preprocess.contract);
      ("restricted/identity", Placement.Restricted, Preprocess.identity);
      ("general/identity", Placement.General, Preprocess.identity);
    ];
  match (Placement.solve implicit, Placement.solve explicit) with
  | Placement.Partitioned a, Placement.Partitioned b ->
      Alcotest.(check (list int)) "same tiers"
        (Array.to_list a.Placement.tier_of)
        (Array.to_list b.Placement.tier_of);
      feq "same objective" a.Placement.objective b.Placement.objective;
      (* and both equal the hand-checked three-tier optimum *)
      Alcotest.(check (list int)) "the known optimum" [ 0; 0; 1; 2 ]
        (Array.to_list b.Placement.tier_of);
      feq "the known objective" 4.6 b.Placement.objective
  | _ -> Alcotest.fail "chain-vs-tree solve failed"

(* ---- the 20-mote testbed as a routing star ------------------------- *)

let test_testbed_star () =
  let topo =
    Placement.Topology.of_parents (Netsim.Testbed.routing_parents ~n_nodes:20)
  in
  Alcotest.(check int) "21 tiers" 21 (Placement.Topology.n_tiers topo);
  Alcotest.(check int) "the basestation is the root" 20
    (Placement.Topology.root topo);
  Alcotest.(check bool) "not a chain" false (Placement.Topology.is_chain topo);
  Alcotest.(check (list int)) "every mote uplinks straight to the root"
    (List.init 20 Fun.id)
    (Placement.Topology.children topo 20);
  (* pinned golden of the canonical rendering (what service digests
     cover for non-chain instances) *)
  Alcotest.(check string) "topology golden"
    "[20;20;20;20;20;20;20;20;20;20;20;20;20;20;20;20;20;20;20;20;-1]"
    (Format.asprintf "%a" Placement.Topology.pp topo);
  (* figure 3 deployed on the star: sources sit on mote 0, every other
     mote idles, so the solve must reproduce the two-tier optimum with
     the whole cut on mote 0's uplink *)
  let spec = Apps.Synthetic.fig3_spec ~cpu_budget:4. in
  let n_ops = Array.length spec.Spec.cpu in
  let mote k =
    { Placement.tname = Printf.sprintf "mote%d" k; cpu = spec.Spec.cpu;
      cpu_budget = spec.Spec.cpu_budget; alpha = spec.Spec.alpha }
  in
  let star =
    Placement.v ~topology:topo ~spec
      ~tiers:
        (List.init 21 (fun k ->
             if k = 20 then
               { Placement.tname = "base"; cpu = Array.make n_ops 0.;
                 cpu_budget = infinity; alpha = 0. }
             else mote k))
      ~links:
        (List.init 20 (fun k ->
             { Placement.lname = Printf.sprintf "radio%d" k;
               net_budget = spec.Spec.net_budget; beta = spec.Spec.beta }))
      ()
  in
  match (Placement.solve star, Placement.solve (Placement.of_spec spec)) with
  | Placement.Partitioned s, Placement.Partitioned two ->
      feq "star objective = two-tier objective" two.Placement.objective
        s.Placement.objective;
      feq "mote 0's uplink carries the two-tier cut"
        two.Placement.link_net.(0) s.Placement.link_net.(0);
      for k = 1 to 19 do
        feq (Printf.sprintf "radio%d idle" k) 0. s.Placement.link_net.(k)
      done;
      (* fig3 has co-optimal splits, so don't pin the exact assignment:
         everything must sit on mote 0 or the base, and mapping the
         star's split back onto the two-tier instance must be feasible
         at the same objective *)
      Alcotest.(check bool) "only mote 0 and the base are used" true
        (Array.for_all (fun t -> t = 0 || t = 20) s.Placement.tier_of);
      let two_t = Placement.of_spec spec in
      let mapped =
        Array.map (fun t -> if t = 0 then 0 else 1) s.Placement.tier_of
      in
      Alcotest.(check bool) "mapped split feasible on two tiers" true
        (Placement.feasible two_t ~tier_of:mapped);
      feq "mapped split co-optimal on two tiers" two.Placement.objective
        (Placement.objective_value two_t ~tier_of:mapped)
  | _ -> Alcotest.fail "testbed star solve failed"

let () =
  Alcotest.run "placement"
    [
      ( "splitrun-pins",
        [ Alcotest.test_case "pinned regressions" `Quick test_splitrun_pins ]
      );
      ( "fig3-golden",
        [
          Alcotest.test_case "cut bandwidths" `Quick test_fig3_cut_bandwidths;
          Alcotest.test_case "partition shape" `Quick
            test_fig3_partition_shape;
        ] );
      ( "three-tier",
        [
          Alcotest.test_case "hand-checked fixture" `Quick
            test_three_tier_hand_checked;
          Alcotest.test_case "collapses to two tiers" `Quick
            test_three_tier_collapses_to_two;
        ] );
      ( "multirun",
        [
          Alcotest.test_case "three-tier end-to-end" `Quick
            test_multirun_three_tier_e2e;
        ] );
      ( "tree",
        [
          Alcotest.test_case "hand-checked Y fixture" `Quick
            test_y_tree_hand_checked;
          Alcotest.test_case "shared root edge binds" `Quick
            test_y_tree_shared_edge_binds;
          Alcotest.test_case "chain is a degenerate tree" `Quick
            test_chain_tree_byte_identical;
          Alcotest.test_case "testbed routing star" `Quick test_testbed_star;
        ] );
      ( "steal",
        [
          Alcotest.test_case "eeg optima match wave" `Slow test_steal_eeg;
        ] );
    ]
