(* The correctness-tooling layer itself: certificate checker, seeded
   generators, shrinking, the fuzz driver, and the cross-test pivot
   accounting (DESIGN.md §11). *)

open Check

(* ---- pivot accounting -------------------------------------------

   [Lp.Simplex.cumulative_pivots] is a process-wide counter.  Every
   test suite resets it in its main; this group is the single place
   that asserts its behaviour. *)

let small_lp () =
  let p = Lp.Problem.create () in
  let x = Lp.Problem.add_var ~lo:0. ~hi:10. p in
  let y = Lp.Problem.add_var ~lo:0. ~hi:10. p in
  Lp.Problem.add_constr p [ (x, 1.); (y, 2.) ] Lp.Problem.Le 14.;
  Lp.Problem.add_constr p [ (x, 3.); (y, -1.) ] Lp.Problem.Ge 0.;
  Lp.Problem.set_objective p Lp.Problem.Maximize [ (x, 3.); (y, 4.) ];
  p

let test_pivot_accounting () =
  Lp.Simplex.reset_cumulative_pivots ();
  Alcotest.(check int) "reset clears the counter" 0
    (Lp.Simplex.cumulative_pivots ());
  let r = Lp.Simplex.solve_warm (small_lp ()) in
  Alcotest.(check bool) "optimal" true (Lp.Solution.is_optimal r.status);
  Alcotest.(check bool) "solving pivots at least once" true (r.pivots > 0);
  Alcotest.(check int) "counter accumulates exactly the solve's pivots"
    r.pivots
    (Lp.Simplex.cumulative_pivots ());
  let r2 = Lp.Simplex.solve_warm (small_lp ()) in
  Alcotest.(check int) "second solve adds its pivots"
    (r.pivots + r2.pivots)
    (Lp.Simplex.cumulative_pivots ());
  Lp.Simplex.reset_cumulative_pivots ();
  Alcotest.(check int) "reset again" 0 (Lp.Simplex.cumulative_pivots ())

(* ---- certificate checker ---- *)

let is_valid = function Certificate.Valid -> true | Certificate.Invalid _ -> false

let test_certificate_accepts_valid () =
  (* many random LPs: every optimal answer must certify *)
  let rng = Prng.create 2024 in
  let optimal = ref 0 in
  for _ = 1 to 200 do
    let p = Gen.lp rng ~size:7 in
    let r = Lp.Simplex.solve_warm p in
    if Lp.Solution.is_optimal r.status then begin
      incr optimal;
      match Certificate.check_result p r with
      | Certificate.Valid -> ()
      | Certificate.Invalid msgs ->
          Alcotest.failf "valid solve rejected: %s"
            (String.concat "; " msgs)
    end
  done;
  Alcotest.(check bool) "exercised some optimal instances" true (!optimal > 50)

(* a deliberately broken solver: returns a feasible but suboptimal
   vertex (with the basis that genuinely describes that vertex) *)
let test_certificate_catches_suboptimal () =
  let p = small_lp () in
  (* solving the minimisation of the same objective yields the wrong
     vertex for the maximisation, with a perfectly consistent basis *)
  let wrong = Lp.Problem.copy p in
  Lp.Problem.set_objective wrong Lp.Problem.Minimize [ (0, 3.); (1, 4.) ];
  let r = Lp.Simplex.solve_warm wrong in
  let sol = Lp.Solution.get r.status in
  let basis = Option.get r.basis in
  (* same x, same basis, claimed optimal for the maximisation *)
  let claimed =
    { Lp.Solution.x = sol.x;
      objective = Lp.Problem.objective_value p sol.x }
  in
  match Certificate.check p claimed basis with
  | Certificate.Invalid _ -> ()
  | Certificate.Valid ->
      Alcotest.fail "suboptimal vertex passed the certificate"

let test_certificate_catches_corrupt_solution () =
  let p = small_lp () in
  let r = Lp.Simplex.solve_warm p in
  let sol = Lp.Solution.get r.status in
  let basis = Option.get r.basis in
  (* corrupt one coordinate: breaks either feasibility or the
     nonbasic-at-bound conditions *)
  let x = Array.copy sol.Lp.Solution.x in
  x.(0) <- x.(0) +. 1.;
  Alcotest.(check bool) "perturbed point rejected" false
    (is_valid
       (Certificate.check p { sol with Lp.Solution.x } basis));
  (* corrupt the claimed objective *)
  Alcotest.(check bool) "wrong objective rejected" false
    (is_valid
       (Certificate.check p
          { sol with Lp.Solution.objective = sol.objective +. 5. }
          basis))

let test_certificate_catches_corrupt_basis () =
  let p = small_lp () in
  let r = Lp.Simplex.solve_warm p in
  let sol = Lp.Solution.get r.status in
  let basis = Option.get r.basis in
  let stat = Array.copy basis.Lp.Basis.stat in
  (* flip the first nonbasic column's resting bound *)
  let j =
    Array.to_list (Array.mapi (fun j s -> (j, s)) stat)
    |> List.find (fun (_, s) -> s <> Lp.Basis.Basic)
    |> fst
  in
  stat.(j) <-
    (if stat.(j) = Lp.Basis.At_lower then Lp.Basis.At_upper
     else Lp.Basis.At_lower);
  Alcotest.(check bool) "corrupt basis rejected" false
    (is_valid
       (Certificate.check p sol { basis with Lp.Basis.stat }))

(* ---- generator determinism ---- *)

let test_generators_deterministic () =
  let show_spec s = Format.asprintf "%a" Gen.pp_spec s in
  let show_lp p = Format.asprintf "%a" Lp.Problem.pp p in
  let a = Gen.spec (Prng.create 7) Gen.default_cfg in
  let b = Gen.spec (Prng.create 7) Gen.default_cfg in
  Alcotest.(check string) "same seed, same spec" (show_spec a) (show_spec b);
  let pa = Gen.lp (Prng.create 11) ~size:8 in
  let pb = Gen.lp (Prng.create 11) ~size:8 in
  Alcotest.(check string) "same seed, same lp" (show_lp pa) (show_lp pb);
  let c = Gen.spec (Prng.create 8) Gen.default_cfg in
  Alcotest.(check bool) "different seed, different spec" true
    (show_spec a <> show_spec c)

let test_random_cut_single_crossing () =
  let rng = Prng.create 5 in
  for _ = 1 to 50 do
    let s = Gen.spec rng Gen.default_cfg in
    let cut = Gen.random_cut rng s in
    Alcotest.(check bool) "predecessor-closed cut feasible modulo budgets"
      true
      (Array.for_all2
         (fun on p ->
           match p with
           | Wishbone.Movable.Pin_node -> on
           | Wishbone.Movable.Pin_server -> not on
           | Wishbone.Movable.Movable -> true)
         cut s.Wishbone.Spec.placement);
    Array.iter
      (fun (e : Dataflow.Graph.edge) ->
        Alcotest.(check bool) "no server->node edge" false
          ((not cut.(e.src)) && cut.(e.dst)))
      (Dataflow.Graph.edges s.Wishbone.Spec.graph)
  done

(* ---- shrinking ---- *)

let test_shrink_lp_minimises () =
  let rng = Prng.create 13 in
  let p = Gen.lp rng ~size:8 in
  (* pretend the failure is "some constraint mentions variable 0" *)
  let pred p' =
    Array.exists
      (fun (c : Lp.Problem.constr) ->
        List.exists (fun (v, coef) -> v = 0 && coef <> 0.) c.Lp.Problem.terms)
      (Lp.Problem.constrs p')
  in
  Alcotest.(check bool) "original fails" true (pred p);
  let small = Shrink.problem pred p in
  Alcotest.(check bool) "shrunk still fails" true (pred small);
  Alcotest.(check int) "one constraint left" 1
    (Lp.Problem.n_constrs small);
  Alcotest.(check int) "one variable left" 1 (Lp.Problem.n_vars small);
  let nonzeros =
    Array.fold_left
      (fun acc (c : Lp.Problem.constr) ->
        acc + List.length c.Lp.Problem.terms)
      0
      (Lp.Problem.constrs small)
  in
  Alcotest.(check int) "one coefficient left" 1 nonzeros

let test_shrink_spec_minimises () =
  let rng = Prng.create 17 in
  let s = Gen.spec rng { Gen.default_cfg with Gen.n_ops = 10 } in
  (* pretend the failure is "total bandwidth exceeds 50" *)
  let pred s' =
    Array.fold_left ( +. ) 0. s'.Wishbone.Spec.bandwidth > 50.
  in
  Alcotest.(check bool) "original fails" true (pred s);
  let small = Shrink.spec pred s in
  Alcotest.(check bool) "shrunk still fails" true (pred small);
  Alcotest.(check bool) "fewer or equal ops" true
    (Dataflow.Graph.n_ops small.Wishbone.Spec.graph
    <= Dataflow.Graph.n_ops s.Wishbone.Spec.graph);
  (* minimal: a single edge carries the whole failure *)
  Alcotest.(check int) "one edge left" 1
    (Dataflow.Graph.n_edges small.Wishbone.Spec.graph)

(* ---- the fuzz driver ---- *)

let test_fuzz_bounded_pass () =
  let summary =
    Fuzz.run { Fuzz.default with Fuzz.count = 40; size = 7; seed = 42 }
  in
  Alcotest.(check int) "ran all cases"
    (List.length Fuzz.all_oracles * 40)
    summary.Fuzz.cases_run;
  Alcotest.(check bool) "all oracles passed" true (Fuzz.all_passed summary)

let test_fuzz_replay_deterministic () =
  let cfg =
    { Fuzz.default with Fuzz.count = 15; size = 8; seed = 1234; start = 5 }
  in
  let a = Fuzz.run cfg and b = Fuzz.run cfg in
  Alcotest.(check int) "same case count" a.Fuzz.cases_run b.Fuzz.cases_run;
  Alcotest.(check (list string)) "same failures"
    (List.map (fun f -> f.Fuzz.message) a.Fuzz.failures)
    (List.map (fun f -> f.Fuzz.message) b.Fuzz.failures)

let test_oracles_pass_directly () =
  let rng = Prng.create 99 in
  for _ = 1 to 20 do
    let p = Gen.lp rng ~size:6 in
    (match Oracle.lp_certificate (Prng.create 1) p with
    | Oracle.Pass -> ()
    | Oracle.Fail m -> Alcotest.failf "lp_certificate: %s" m);
    let ilp = Gen.ilp rng ~size:5 in
    (match Oracle.ilp_brute ilp with
    | Oracle.Pass -> ()
    | Oracle.Fail m -> Alcotest.failf "ilp_brute: %s" m);
    let s = Gen.spec rng { Gen.default_cfg with Gen.n_ops = 6 } in
    (match Oracle.cut_enumeration s with
    | Oracle.Pass -> ()
    | Oracle.Fail m -> Alcotest.failf "cut_enumeration: %s" m);
    match Oracle.split_equivalence (Prng.create 2) s with
    | Oracle.Pass -> ()
    | Oracle.Fail m -> Alcotest.failf "split_equivalence: %s" m
  done

(* ---- qcheck: preprocessing does not change the answer ---- *)

let prop_preprocess_invariant =
  QCheck.Test.make ~count:60 ~name:"preprocess on/off agree"
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, tightness3) ->
      let cfg =
        {
          Gen.default_cfg with
          Gen.n_ops = 6;
          tightness = Float.of_int tightness3 /. 2.;
        }
      in
      let spec = Gen.spec (Prng.create seed) cfg in
      let a = Wishbone.Partitioner.solve ~preprocess:true spec in
      let b = Wishbone.Partitioner.solve ~preprocess:false spec in
      match (a, b) with
      | Wishbone.Partitioner.Partitioned ra, Wishbone.Partitioner.Partitioned rb
        ->
          Float.abs (ra.objective -. rb.objective)
          <= 1e-6 *. (1. +. Float.abs rb.objective)
      | Wishbone.Partitioner.No_feasible_partition,
        Wishbone.Partitioner.No_feasible_partition ->
          true
      | _ -> false)

(* ---- rate search edge cases ---- *)

let generous_spec seed =
  Gen.spec (Prng.create seed) { Gen.default_cfg with Gen.tightness = 0. }

let test_rate_search_infeasible_everywhere () =
  (* a node-pinned operator with positive CPU cost and a zero budget
     is infeasible at every positive rate *)
  let s = generous_spec 3 in
  let cpu = Array.copy s.Wishbone.Spec.cpu in
  cpu.(0) <- 0.5 (* the pinned source *);
  let s = { s with Wishbone.Spec.cpu; cpu_budget = 0.; net_budget = 0. } in
  Alcotest.(check bool) "no rate is feasible" true
    (Wishbone.Rate_search.search s = None)

let test_rate_search_feasible_at_full_rate () =
  let s = generous_spec 4 in
  (match Wishbone.Partitioner.solve s with
  | Wishbone.Partitioner.Partitioned _ -> ()
  | _ -> Alcotest.fail "generous spec should be feasible at rate 1");
  match Wishbone.Rate_search.search s with
  | None -> Alcotest.fail "search failed on a feasible instance"
  | Some r ->
      Alcotest.(check bool) "multiplier at least the full rate" true
        (r.Wishbone.Rate_search.rate_multiplier >= 1.)

let test_rate_search_feasibility_monotone () =
  (* once infeasible at some rate, every higher rate is infeasible *)
  let s = Gen.spec (Prng.create 6) { Gen.default_cfg with Gen.tightness = 0.7 } in
  let feasible r =
    match Wishbone.Rate_search.feasible_at s r with
    | Wishbone.Partitioner.Partitioned _ -> true
    | _ -> false
  in
  let rates = [ 0.25; 0.5; 1.; 2.; 4.; 8. ] in
  let flags = List.map feasible rates in
  let rec monotone = function
    | false :: rest -> List.for_all not rest
    | _ :: rest -> monotone rest
    | [] -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "feasibility ladder %s is monotone"
       (String.concat ""
          (List.map (fun b -> if b then "1" else "0") flags)))
    true (monotone flags)

let () =
  (* the pivot counter is process-wide; start every suite from a
     clean slate so no test depends on which suite ran before it *)
  Lp.Simplex.reset_cumulative_pivots ();
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "check"
    [
      ("pivot_accounting", [ tc "single source of truth" test_pivot_accounting ]);
      ( "certificate",
        [
          tc "accepts valid solves" test_certificate_accepts_valid;
          tc "catches a suboptimal solver" test_certificate_catches_suboptimal;
          tc "catches corrupt solutions" test_certificate_catches_corrupt_solution;
          tc "catches corrupt bases" test_certificate_catches_corrupt_basis;
        ] );
      ( "generators",
        [
          tc "deterministic by seed" test_generators_deterministic;
          tc "random cuts are single-crossing" test_random_cut_single_crossing;
        ] );
      ( "shrink",
        [
          tc "lp minimised" test_shrink_lp_minimises;
          tc "spec minimised" test_shrink_spec_minimises;
        ] );
      ( "fuzz",
        [
          tc "bounded pass" test_fuzz_bounded_pass;
          tc "replay is deterministic" test_fuzz_replay_deterministic;
          tc "oracles pass directly" test_oracles_pass_directly;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_preprocess_invariant ] );
      ( "rate_search",
        [
          tc "infeasible at every rate" test_rate_search_infeasible_everywhere;
          tc "feasible at full rate" test_rate_search_feasible_at_full_rate;
          tc "feasibility monotone in rate" test_rate_search_feasibility_monotone;
        ] );
    ]
