(* Fault containment and crash-safe checkpoint suite (DESIGN.md §17).

   Five groups:
   - faults off is bit-identical: a service with the containment layer
     armed (retries, Fault_plan.none) serves the pinned 32-query batch
     byte-identically to the plain direct path, with ok = queries;
   - fault-plan replay determinism: a seeded plan over the same batch
     yields identical digests and identical containment counters for
     shards 1/2/4, and re-runs bit-identically for the same seed; every
     non-failed answer equals the faults-off answer byte for byte, and
     counters conserve (ok + degraded + failed = queries);
   - retry accounting: at fault rate 1.0 every solve misbehaves; more
     retries can only convert failures into successes, never change a
     successful answer;
   - checkpoints: kill-and-restore mid-history replays the rest of the
     workload byte-identically to an uninterrupted service (faulted and
     fault-free), and corrupt / truncated / stale / missing snapshots
     restore to a cold cache, never to wrong answers;
   - degradation: work-unit budgets surface gap-certified Degraded
     answers that are feasible and deterministic across shard counts. *)

open Wishbone

let q placement request = { Service.placement; request }
let rate pl r = q pl (Service.Rate r)
let search pl = q pl Service.Search

let digests responses =
  Array.map (fun (r : Service.response) -> r.Service.digest) responses

let synth ?(n_ops = 8) seed =
  Placement.of_spec (Apps.Synthetic.random_spec ~seed ~n_ops ())

let spec_exn ?mode ~platform raw =
  match Spec.of_profile ?mode ~node_platform:platform raw with
  | Ok s -> s
  | Error m -> failwith m

(* the same pinned 32-query mixed eeg14/eeg22/synthetic batch as the
   service suite: short profiles, repeats and near-repeats *)
let mixed_batch =
  lazy
    (let eeg14 =
       Placement.of_spec
         (spec_exn ~mode:Movable.Permissive
            ~platform:Profiler.Platform.tmote_sky
            (Apps.Eeg.profile ~duration:10. (Apps.Eeg.build ~n_channels:14 ())))
     in
     let eeg22 =
       Placement.of_spec
         (spec_exn ~mode:Movable.Permissive
            ~platform:Profiler.Platform.tmote_sky
            (Apps.Eeg.profile ~duration:10. (Apps.Eeg.build ())))
     in
     let s seed = synth ~n_ops:12 seed in
     Array.of_list
       ([ rate eeg14 0.4; rate eeg14 0.7; rate eeg14 1.0; rate eeg14 1.3;
          rate eeg14 0.7 ]
       @ [ rate eeg22 0.4; rate eeg22 0.7; rate eeg22 1.0; rate eeg22 1.3;
           rate eeg22 0.7 ]
       @ List.concat_map
           (fun seed -> [ rate (s seed) 0.8; rate (s seed) 1.2 ])
           [ 1; 2; 3; 4; 5 ]
       @ List.map (fun seed -> search (s seed)) [ 1; 2; 3; 4 ]
       @ [ rate (s 1) 0.8; rate (s 2) 1.2; search (s 1); search (s 2);
           rate (s 3) 0.8 ]
       @ [ rate eeg14 0.4; rate eeg22 1.0; rate (s 4) 1.2 ]))

let pp_counters (c : Service.counters) =
  Printf.sprintf "q%d h%d m%d w%d i%d e%d r%d | ok%d d%d f%d rt%d wd%d"
    c.Service.queries c.Service.hits c.Service.misses c.Service.warm_starts
    c.Service.inserts c.Service.evictions c.Service.resident c.Service.ok
    c.Service.degraded c.Service.failed c.Service.retries
    c.Service.worker_deaths

let check_conservation name (c : Service.counters) =
  Alcotest.(check int)
    (name ^ ": ok + degraded + failed = queries")
    c.Service.queries
    (c.Service.ok + c.Service.degraded + c.Service.failed);
  Alcotest.(check int)
    (name ^ ": hits + misses = queries")
    c.Service.queries
    (c.Service.hits + c.Service.misses);
  Alcotest.(check int)
    (name ^ ": inserts - evictions = resident")
    c.Service.resident
    (c.Service.inserts - c.Service.evictions)

(* ---- faults off: the containment layer is invisible --------------- *)

let test_faults_off_identity () =
  let queries = Lazy.force mixed_batch in
  let plain = Service.create ~capacity:64 () in
  let armed =
    Service.create ~capacity:64 ~retries:3 ~fault_plan:Service.Fault_plan.none
      ()
  in
  let d_plain = digests (Service.run_batch ~shards:2 plain queries) in
  let d_armed = digests (Service.run_batch ~shards:2 armed queries) in
  Alcotest.(check (array string)) "digests bit-identical" d_plain d_armed;
  let c = Service.counters armed in
  check_conservation "faults off" c;
  Alcotest.(check int) "all ok" c.Service.queries c.Service.ok;
  Alcotest.(check int) "no retries" 0 c.Service.retries;
  Alcotest.(check int) "no deaths" 0 c.Service.worker_deaths

(* ---- seeded fault plans: deterministic containment ---------------- *)

let faulted_run ?(seed = 1) ?(rate = 0.35) ?(retries = 1) ~shards queries =
  let svc =
    Service.create ~capacity:64 ~retries
      ~fault_plan:(Service.Fault_plan.seeded ~rate seed)
      ()
  in
  let responses = Service.run_batch ~shards svc queries in
  (responses, Service.counters svc)

let test_fault_replay_shards () =
  let queries = Lazy.force mixed_batch in
  let r1, c1 = faulted_run ~shards:1 queries in
  let r2, c2 = faulted_run ~shards:2 queries in
  let r4, c4 = faulted_run ~shards:4 queries in
  Alcotest.(check (array string)) "shards=2 digests" (digests r1) (digests r2);
  Alcotest.(check (array string)) "shards=4 digests" (digests r1) (digests r4);
  Alcotest.(check string) "shards=2 counters" (pp_counters c1) (pp_counters c2);
  Alcotest.(check string) "shards=4 counters" (pp_counters c1) (pp_counters c4);
  check_conservation "faulted batch" c1;
  (* the plan at this rate must actually exercise the machinery *)
  Alcotest.(check bool) "some queries failed" true (c1.Service.failed > 0);
  Alcotest.(check bool) "some retries happened" true (c1.Service.retries > 0);
  Alcotest.(check bool) "a worker died" true (c1.Service.worker_deaths > 0);
  (* same seed replays bit-identically *)
  let r1', c1' = faulted_run ~shards:2 queries in
  Alcotest.(check (array string)) "same seed, same digests" (digests r1)
    (digests r1');
  Alcotest.(check string) "same seed, same counters" (pp_counters c1)
    (pp_counters c1');
  (* containment never corrupts: every answer either equals the
     faults-off answer byte for byte, or is an injected failure *)
  let plain = Service.create ~capacity:64 () in
  let d0 = digests (Service.run_batch ~shards:2 plain queries) in
  Array.iteri
    (fun i (r : Service.response) ->
      match r.Service.answer with
      | Service.Failed _ -> ()
      | _ ->
          Alcotest.(check string)
            (Printf.sprintf "query %d: non-failed answer untouched" i)
            d0.(i) r.Service.digest)
    r1

let test_retry_accounting () =
  let queries = Array.init 12 (fun i -> rate (synth (300 + i)) 0.9) in
  (* rate 1.0: every solved query misbehaves somehow *)
  let r0, c0 = faulted_run ~rate:1.0 ~retries:0 ~shards:2 queries in
  let r1, c1 = faulted_run ~rate:1.0 ~retries:1 ~shards:2 queries in
  check_conservation "retries=0" c0;
  check_conservation "retries=1" c1;
  Alcotest.(check bool) "failures at retries=0" true (c0.Service.failed > 0);
  (* more retries only converts failures into successes *)
  Alcotest.(check bool) "retry reduces failures" true
    (c1.Service.failed <= c0.Service.failed);
  Array.iteri
    (fun i (r1i : Service.response) ->
      match (r1i.Service.answer, r0.(i).Service.answer) with
      | Service.Failed _, _ | _, Service.Failed _ -> ()
      | _ ->
          Alcotest.(check string)
            (Printf.sprintf "query %d: answer independent of retry budget" i)
            r0.(i).Service.digest r1i.Service.digest)
    r1;
  (* with one retry, every faulted query burns at least its failure's
     attempts: retries >= failed (permanent faults retry then fail) *)
  Alcotest.(check bool) "retry accounting" true
    (c1.Service.retries >= c1.Service.failed)

(* ---- checkpoints --------------------------------------------------- *)

let tmpfile name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "wishbone_robust_%d_%s" (Unix.getpid ()) name)

let split_batch queries =
  let n = Array.length queries in
  (Array.sub queries 0 (n / 2), Array.sub queries (n / 2) (n - (n / 2)))

let run_split_with_checkpoint ~fault_plan ~retries queries path =
  let first, rest = split_batch queries in
  (* uninterrupted reference *)
  let whole = Service.create ~capacity:64 ~retries ~fault_plan () in
  let _ = Service.run_batch ~shards:2 whole first in
  let d_whole = digests (Service.run_batch ~shards:2 whole rest) in
  (* kill after the first half, restore, serve the rest *)
  let victim = Service.create ~capacity:64 ~retries ~fault_plan () in
  let _ = Service.run_batch ~shards:2 victim first in
  Service.checkpoint victim path;
  let revived, outcome = Service.restore ~retries ~fault_plan path in
  (match outcome with
  | Service.Restored n ->
      Alcotest.(check int)
        "restored entry count"
        (Service.counters victim).Service.resident n
  | Service.Cold_start reason -> Alcotest.fail ("cold start: " ^ reason));
  Alcotest.(check string) "counters survive the crash"
    (pp_counters (Service.counters victim))
    (pp_counters (Service.counters revived));
  let d_revived = digests (Service.run_batch ~shards:2 revived rest) in
  Alcotest.(check (array string))
    "post-restore replay = uninterrupted run" d_whole d_revived;
  Alcotest.(check string) "final counters identical"
    (pp_counters (Service.counters whole))
    (pp_counters (Service.counters revived))

let test_checkpoint_roundtrip () =
  let queries = Lazy.force mixed_batch in
  let path = tmpfile "roundtrip.ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      run_split_with_checkpoint ~fault_plan:Service.Fault_plan.none ~retries:1
        queries path;
      (* checkpointing is deterministic: same state, same bytes *)
      let svc = Service.create ~capacity:8 () in
      let _ = Service.run_batch svc (Array.sub queries 10 6) in
      Service.checkpoint svc path;
      let read_all p =
        let ic = open_in_bin p in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let b1 = read_all path in
      Service.checkpoint svc path;
      Alcotest.(check bool) "snapshot bytes stable" true (b1 = read_all path))

let test_checkpoint_roundtrip_faulted () =
  (* the fault plan keys on the global query sequence number, which the
     checkpoint preserves — so even an injected-fault workload resumes
     bit-identically *)
  let queries = Lazy.force mixed_batch in
  let path = tmpfile "faulted.ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      run_split_with_checkpoint
        ~fault_plan:(Service.Fault_plan.seeded ~rate:0.35 1)
        ~retries:1 queries path)

let test_checkpoint_rejects_damage () =
  let queries = Array.init 6 (fun i -> rate (synth (500 + i)) 1.1) in
  let svc = Service.create ~capacity:16 () in
  let _ = Service.run_batch svc queries in
  let path = tmpfile "damage.ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Service.checkpoint svc path;
      let bytes =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Bytes.of_string (really_input_string ic (in_channel_length ic)))
      in
      let write s =
        let oc = open_out_bin path in
        output_string oc s;
        close_out oc
      in
      let expect_cold name =
        match Service.restore path with
        | _, Service.Cold_start _ -> ()
        | _, Service.Restored _ ->
            Alcotest.fail (name ^ ": damaged snapshot restored")
      in
      (* flip one byte deep in the payload *)
      let flipped = Bytes.copy bytes in
      let pos = Bytes.length flipped - 7 in
      Bytes.set flipped pos (Char.chr (Char.code (Bytes.get flipped pos) lxor 0x40));
      write (Bytes.to_string flipped);
      expect_cold "bit flip";
      (* truncate mid-entry *)
      write (String.sub (Bytes.to_string bytes) 0 (Bytes.length bytes / 2));
      expect_cold "truncation";
      (* not a snapshot at all *)
      write "definitely not a checkpoint\n";
      expect_cold "garbage";
      (* stale parameters: same bytes, different search tolerance *)
      write (Bytes.to_string bytes);
      (match Service.restore ~tol:0.05 path with
      | _, Service.Cold_start _ -> ()
      | _, Service.Restored _ -> Alcotest.fail "stale tol restored");
      (* missing file *)
      Sys.remove path;
      expect_cold "missing file";
      (* and the intact snapshot still restores *)
      Service.checkpoint svc path;
      match Service.restore path with
      | _, Service.Restored n ->
          Alcotest.(check int) "intact snapshot restores"
            (Service.counters svc).Service.resident n
      | _, Service.Cold_start reason ->
          Alcotest.fail ("intact snapshot went cold: " ^ reason))

(* ---- degradation under work-unit budgets -------------------------- *)

let test_degraded_answers () =
  (* a tiny node budget forces unproved incumbents somewhere in a
     varied workload; answers stay deterministic and feasible *)
  let options = { Lp.Branch_bound.default_options with max_nodes = 1 } in
  let queries =
    Array.init 10 (fun i -> rate (synth ~n_ops:12 (700 + i)) 1.0)
  in
  let run shards =
    let svc = Service.create ~capacity:32 ~options () in
    let responses = Service.run_batch ~shards svc queries in
    (responses, Service.counters svc)
  in
  let r1, c1 = run 1 in
  let r2, c2 = run 2 in
  Alcotest.(check (array string)) "degraded digests shard-stable" (digests r1)
    (digests r2);
  Alcotest.(check string) "degraded counters shard-stable" (pp_counters c1)
    (pp_counters c2);
  check_conservation "degraded workload" c1;
  let saw = ref 0 in
  Array.iteri
    (fun i (r : Service.response) ->
      match r.Service.answer with
      | Service.Degraded { rate = rr; report; gap } ->
          incr saw;
          Alcotest.(check bool)
            (Printf.sprintf "query %d: gap sane" i)
            true
            (Float.is_nan gap || gap >= 0.);
          Alcotest.(check bool)
            (Printf.sprintf "query %d: incumbent feasible" i)
            true
            (Placement.feasible
               (Placement.scale_rate queries.(i).Service.placement rr)
               ~tier_of:report.Placement.tier_of)
      | _ -> ())
    r1;
  Alcotest.(check int) "degraded counter counts them" !saw c1.Service.degraded

let () =
  Alcotest.run "robust"
    [
      ( "faults-off",
        [
          Alcotest.test_case "containment layer is bit-invisible" `Quick
            test_faults_off_identity;
        ] );
      ( "fault-plan",
        [
          Alcotest.test_case "replay determinism, shards 1/2/4" `Quick
            test_fault_replay_shards;
          Alcotest.test_case "retry accounting" `Quick test_retry_accounting;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "kill-and-restore round trip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "faulted kill-and-restore round trip" `Quick
            test_checkpoint_roundtrip_faulted;
          Alcotest.test_case "damaged snapshots fall back to cold" `Quick
            test_checkpoint_rejects_damage;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "budgeted answers are certified and stable"
            `Quick test_degraded_answers;
        ] );
    ]
