(* Application graph tests: speech pipeline structure and data sizes,
   EEG cascade structure and detection behaviour, synthetic problem
   generators. *)

open Dataflow

(* ---- speech ---- *)

let speech = Apps.Speech.build ()

let test_speech_structure () =
  let g = speech.Apps.Speech.graph in
  Alcotest.(check int) "9 operators" 9 (Graph.n_ops g);
  Alcotest.(check bool) "linear pipeline" true (Graph.is_linear_pipeline g);
  let names =
    Array.to_list (Graph.topo_order g)
    |> List.map (fun i -> (Graph.op g i).Op.name)
  in
  Alcotest.(check (list string)) "pipeline order"
    [ "source"; "preemph"; "hamming"; "prefilt"; "fft"; "filtbank"; "logs";
      "cepstrals"; "detect" ]
    names

let test_speech_wire_sizes () =
  (* run one frame through and check the per-stage wire formats match
     the paper: 400ish-byte frames, 128ish after the filter bank,
     52ish after the cepstrals *)
  let g = speech.Apps.Speech.graph in
  let exec = Runtime.Exec.full g in
  ignore
    (Runtime.Exec.fire exec ~op:speech.Apps.Speech.source ~port:0
       (Apps.Speech.frame_gen ~seed:5 0));
  let order = Graph.topo_order g in
  let bytes_after name =
    let op =
      Array.to_list order
      |> List.find (fun i -> (Graph.op g i).Op.name = name)
    in
    match Graph.succs g op with
    | [ e ] -> Runtime.Exec.edge_bytes exec e.Graph.eid
    | _ -> Alcotest.failf "op %s should have one out-edge" name
  in
  Alcotest.(check int) "raw frame" 402 (bytes_after "source");
  Alcotest.(check int) "int16 front end" 402 (bytes_after "prefilt");
  Alcotest.(check int) "fft expands" 518 (bytes_after "fft");
  Alcotest.(check int) "filtbank reduces" 130 (bytes_after "filtbank");
  Alcotest.(check int) "logs neutral" 130 (bytes_after "logs");
  Alcotest.(check int) "cepstrals" 54 (bytes_after "cepstrals")

let test_speech_emits_13_mfccs () =
  let g = speech.Apps.Speech.graph in
  let exec = Runtime.Exec.full g in
  let fired =
    Runtime.Exec.fire exec ~op:speech.Apps.Speech.source ~port:0
      (Apps.Speech.frame_gen ~seed:6 0)
  in
  match fired.sink_values with
  | [ Value.Float_arr coeffs ] ->
      Alcotest.(check int) "13 coefficients" 13 (Array.length coeffs);
      Array.iter
        (fun c ->
          if not (Float.is_finite c) then Alcotest.fail "non-finite MFCC")
        coeffs
  | _ -> Alcotest.fail "expected one MFCC vector at the sink"

let test_speech_mfcc_discriminates () =
  (* voiced frames and silence produce systematically different MFCCs;
     c0 tracks overall log energy *)
  let g = speech.Apps.Speech.graph in
  let exec = Runtime.Exec.full g in
  let gen = Dsp.Siggen.Speech.create ~seed:77 () in
  let voiced_c0 = ref [] and quiet_c0 = ref [] in
  for _ = 1 to 400 do
    let frame = Dsp.Siggen.Speech.frame gen Apps.Speech.frame_samples in
    let voiced = Dsp.Siggen.Speech.is_voiced gen in
    let fired =
      Runtime.Exec.fire exec ~op:speech.Apps.Speech.source ~port:0
        (Value.Int16_arr frame)
    in
    match fired.sink_values with
    | [ Value.Float_arr c ] ->
        if voiced then voiced_c0 := c.(0) :: !voiced_c0
        else quiet_c0 := c.(0) :: !quiet_c0
    | _ -> Alcotest.fail "no MFCC"
  done;
  let mean l = List.fold_left ( +. ) 0. l /. Float.of_int (List.length l) in
  Alcotest.(check bool) "both classes seen" true
    (List.length !voiced_c0 > 10 && List.length !quiet_c0 > 10);
  Alcotest.(check bool) "voiced energy higher" true
    (mean !voiced_c0 > mean !quiet_c0 +. 1.)

let test_speech_frame_gen_deterministic () =
  let a = Apps.Speech.frame_gen ~seed:123 0 in
  let b = Apps.Speech.frame_gen ~seed:123 0 in
  Alcotest.(check bool) "replay equal" true (Value.equal a b)

let test_speech_cut_assignment () =
  let a = Apps.Speech.cut_assignment speech 1 in
  Alcotest.(check int) "one op on node" 1
    (Array.fold_left (fun n b -> if b then n + 1 else n) 0 a);
  Alcotest.(check bool) "source on node" true a.(speech.Apps.Speech.source);
  Alcotest.check_raises "k too big"
    (Invalid_argument "Speech.cut_assignment: k out of range") (fun () ->
      ignore (Apps.Speech.cut_assignment speech 9))

let test_speech_profile_rates () =
  let raw = Apps.Speech.profile ~duration:5. speech in
  Alcotest.(check (float 0.5)) "40 windows/s" 40.
    (Profiler.Profile.op_fires_per_sec raw speech.Apps.Speech.source);
  (* raw stream is 16 kB/s, within rounding *)
  let e0 = (List.hd (Graph.succs speech.Apps.Speech.graph speech.Apps.Speech.source)).Graph.eid in
  Alcotest.(check bool) "16 kB/s raw" true
    (Float.abs (Profiler.Profile.edge_bytes_per_sec raw e0 -. 16080.) < 200.)

(* ---- EEG ---- *)

let test_eeg_structure () =
  let t = Apps.Eeg.build () in
  let g = t.Apps.Eeg.graph in
  Alcotest.(check int) "22 channels" 22 (Array.length t.Apps.Eeg.sources);
  Alcotest.(check int) "1126 operators" 1126 (Graph.n_ops g);
  Alcotest.(check int) "channel subgraphs are uniform" 0
    ((Graph.n_ops g - 4) mod 22)

let test_eeg_single_channel_structure () =
  let t = Apps.Eeg.single_channel () in
  let g = t.Apps.Eeg.graph in
  (* 51 per-channel ops + sink *)
  Alcotest.(check int) "52 operators" 52 (Graph.n_ops g);
  Alcotest.(check (list int)) "one source" [ t.Apps.Eeg.sources.(0) ]
    (Graph.sources g)

let test_eeg_feature_window () =
  (* one 512-sample window through a single channel produces one
     3-band feature tuple *)
  let t = Apps.Eeg.single_channel () in
  let exec = Runtime.Exec.full t.Apps.Eeg.graph in
  let gen = Dsp.Siggen.Eeg.create ~seed:1 ~n_channels:1 () in
  let w = Dsp.Siggen.Eeg.window gen Apps.Eeg.window_samples in
  let quant = Array.map (fun x -> int_of_float (Float.round x)) w.(0) in
  let fired =
    Runtime.Exec.fire exec ~op:t.Apps.Eeg.sources.(0) ~port:0
      (Value.Int16_arr quant)
  in
  match fired.sink_values with
  | [ Value.Tuple [ Value.Float a; Value.Float b; Value.Float c ] ] ->
      List.iter
        (fun x ->
          Alcotest.(check bool) "finite nonneg energy" true
            (Float.is_finite x && x >= 0.))
        [ a; b; c ]
  | _ -> Alcotest.fail "expected a 3-energy tuple per window"

let test_eeg_detects_seizures () =
  (* train a patient-specific SVM on synthetic features, rebuild the
     app with it, and check the detector separates ictal windows *)
  let t0 = Apps.Eeg.build ~n_channels:4 () in
  let data = Apps.Eeg.collect_features ~seed:21 ~n_windows:120 t0 in
  let svm = Dsp.Svm.train (Array.map (fun (x, l) -> (x, l)) data) in
  let correct = ref 0 in
  Array.iter
    (fun (x, label) ->
      let c, _ = Dsp.Svm.classify svm x in
      if c = label then incr correct)
    data;
  let accuracy = Float.of_int !correct /. Float.of_int (Array.length data) in
  Alcotest.(check bool) "training accuracy > 0.9" true (accuracy > 0.9)

let test_eeg_debounce_in_graph () =
  (* the detect operator requires 3 consecutive positives before the
     alarm bit goes high *)
  let svm_always_positive =
    { Dsp.Svm.weights = Array.make (22 * 3) 0.; bias = 1. }
  in
  let t = Apps.Eeg.build ~svm:svm_always_positive () in
  let exec = Runtime.Exec.full t.Apps.Eeg.graph in
  let gen = Dsp.Siggen.Eeg.create ~seed:2 ~n_channels:22 () in
  let fire_window () =
    let w = Dsp.Siggen.Eeg.window gen Apps.Eeg.window_samples in
    let outs = ref [] in
    Array.iteri
      (fun ch samples ->
        let q = Array.map (fun x -> int_of_float (Float.round x)) samples in
        let fired =
          Runtime.Exec.fire exec ~op:t.Apps.Eeg.sources.(ch) ~port:0
            (Value.Int16_arr q)
        in
        outs := fired.sink_values @ !outs)
      w;
    !outs
  in
  let alarm_of = function
    | [ Value.Tuple [ Value.Bool alarm; Value.Float _ ] ] -> alarm
    | _ -> Alcotest.fail "expected one alarm tuple per window"
  in
  Alcotest.(check bool) "w1 no alarm" false (alarm_of (fire_window ()));
  Alcotest.(check bool) "w2 no alarm" false (alarm_of (fire_window ()));
  Alcotest.(check bool) "w3 alarm" true (alarm_of (fire_window ()))

let test_eeg_profile_bandwidths () =
  let t = Apps.Eeg.single_channel () in
  let raw = Apps.Eeg.profile ~duration:60. t in
  let g = t.Apps.Eeg.graph in
  (* raw channel stream is 512 int16 samples / 2 s = 513 B/s *)
  let e0 = (List.hd (Graph.succs g t.Apps.Eeg.sources.(0))).Graph.eid in
  Alcotest.(check bool) "raw 513 B/s" true
    (Float.abs (Profiler.Profile.edge_bytes_per_sec raw e0 -. 513.) < 15.);
  (* every level of the cascade reduces data (paper: "at each level the
     amount of data is halved") *)
  let low_adds =
    Array.to_list (Graph.ops g)
    |> List.filter (fun (o : Op.t) ->
           o.kind = "add" && String.length o.name >= 8
           && String.sub o.name 4 3 = "low")
  in
  let rate (o : Op.t) =
    match Graph.succs g o.id with
    | e :: _ -> Profiler.Profile.edge_bytes_per_sec raw e.Graph.eid
    | [] -> 0.
  in
  (* sort by level (the digit before "_add") and demand strictly
     decreasing rates down the cascade *)
  let level (o : Op.t) = Char.code o.name.[7] - Char.code '0' in
  let sorted = List.sort (fun a b -> compare (level a) (level b)) low_adds in
  let rates = List.map rate sorted in
  List.iteri
    (fun i r ->
      if i > 0 then
        Alcotest.(check bool) "cascade halves data" true
          (r < List.nth rates (i - 1) *. 0.6))
    rates;
  Alcotest.(check bool) "deep level is tiny" true
    (List.nth rates (List.length rates - 1) < 60.)

(* ---- synthetic ---- *)

let test_synthetic_random_valid () =
  for seed = 0 to 20 do
    let spec = Apps.Synthetic.random_spec ~seed () in
    let g = spec.Wishbone.Spec.graph in
    Alcotest.(check int) "cpu array sized" (Graph.n_ops g)
      (Array.length spec.Wishbone.Spec.cpu);
    Alcotest.(check int) "bw array sized" (Graph.n_edges g)
      (Array.length spec.Wishbone.Spec.bandwidth);
    (* sources pinned node, sink pinned server *)
    List.iter
      (fun s ->
        Alcotest.(check bool) "source pinned" true
          (spec.Wishbone.Spec.placement.(s) = Wishbone.Movable.Pin_node))
      (Graph.sources g)
  done

let test_synthetic_pipeline_shape () =
  let spec = Apps.Synthetic.random_pipeline_spec ~n_ops:10 () in
  Alcotest.(check bool) "is a pipeline" true
    (Graph.is_linear_pipeline spec.Wishbone.Spec.graph)

let test_fig3_spec_numbers () =
  let spec = Apps.Synthetic.fig3_spec ~cpu_budget:3. in
  Alcotest.(check int) "6 vertices" 6
    (Graph.n_ops spec.Wishbone.Spec.graph);
  Alcotest.(check (float 0.)) "budget" 3. spec.Wishbone.Spec.cpu_budget

let () =
  (* the pivot counter is process-wide; start every suite from a
     clean slate so no test depends on which suite ran before it
     (asserted centrally in test_check.ml) *)
  Lp.Simplex.reset_cumulative_pivots ();
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "apps"
    [
      ( "speech",
        [
          tc "structure" test_speech_structure;
          tc "wire sizes" test_speech_wire_sizes;
          tc "13 MFCCs" test_speech_emits_13_mfccs;
          tc "MFCCs discriminate speech" test_speech_mfcc_discriminates;
          tc "deterministic generator" test_speech_frame_gen_deterministic;
          tc "cut assignment" test_speech_cut_assignment;
          tc "profiled rates" test_speech_profile_rates;
        ] );
      ( "eeg",
        [
          tc "22-channel structure" test_eeg_structure;
          tc "single-channel structure" test_eeg_single_channel_structure;
          tc "feature window" test_eeg_feature_window;
          tc "learned detector separates" test_eeg_detects_seizures;
          tc "3-window debounce" test_eeg_debounce_in_graph;
          tc "cascade bandwidths" test_eeg_profile_bandwidths;
        ] );
      ( "synthetic",
        [
          tc "random specs valid" test_synthetic_random_valid;
          tc "pipeline shape" test_synthetic_pipeline_shape;
          tc "fig3 numbers" test_fig3_spec_numbers;
        ] );
    ]
